"""Gauge lifecycle management (the paper's gauge protocol).

"Gauges are implemented using our gauge library which implements a gauge
protocol that we have defined for gauge creation, communication, and
deletion" (§4).  Creation charges a deployment delay before the gauge
becomes active; repairs *redeploy* the gauges of affected entities, which
blanks them for the redeployment window — the dominant component of the
paper's 30 s repair time and a real monitoring blind spot.

The columnar telemetry plane (X8) adds :class:`ThresholdGate`: gauge
reports only wake the incremental constraint checker when the reported
aggregate crosses (or un-crosses) an invariant threshold, with a
hysteresis band so values hovering at the threshold do not flap the
checker on and off.  Steady-state gauge ticks then cost zero model-query
work — the model property is still updated, but no evaluation runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import GaugeError
from repro.monitoring.gauges import Gauge
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace

__all__ = ["GaugeManager", "ThresholdGate", "WakeThreshold"]


@dataclass(frozen=True)
class WakeThreshold:
    """Wake condition for one gauge kind.

    ``direction="above"`` means the invariant is threatened when the
    value exceeds ``threshold`` (latency, backlog, share); ``"below"``
    when it drops under it (utilization).  Once crossed, the state only
    clears after the value retreats past ``threshold ∓ band`` — the
    hysteresis that stops boundary-hugging values from flapping.  A
    ``math.inf`` threshold (with ``direction="above"``) never crosses:
    the idiom for purely informational kinds whose reports should never
    wake the checker.
    """

    threshold: float
    band: float = 0.0
    direction: str = "above"

    def __post_init__(self) -> None:
        if self.direction not in ("above", "below"):
            raise ValueError(
                f"direction must be 'above' or 'below', got {self.direction!r}"
            )
        if math.isnan(self.threshold):
            raise ValueError("wake threshold must not be NaN")
        if not (self.band >= 0.0):
            raise ValueError(f"hysteresis band must be >= 0, got {self.band}")


class ThresholdGate:
    """Decides, per gauge report, whether to wake the constraint checker.

    Tracks a crossed/uncrossed state per ``(kind, target)``.  A report
    wakes the checker when its value is crossed *or was crossed before*
    (so the checker sees both the violation and the recovery); in-band
    healthy reports are suppressed.  Kinds with no registered
    :class:`WakeThreshold` always wake — unknown telemetry is never
    silently dropped.
    """

    def __init__(self, thresholds: Mapping[str, WakeThreshold]):
        self.thresholds: Dict[str, WakeThreshold] = dict(thresholds)
        self._crossed: Dict[Tuple[str, str], bool] = {}
        self.wakeups = 0
        self.suppressed = 0

    def should_wake(self, kind: str, target: str, value: float) -> bool:
        spec = self.thresholds.get(kind)
        if spec is None:
            self.wakeups += 1
            return True
        key = (kind, target)
        was = self._crossed.get(key, False)
        # Hysteresis: once crossed, only a retreat past threshold ∓ band
        # clears the state.
        if spec.direction == "above":
            limit = spec.threshold - spec.band if was else spec.threshold
            crossed = value > limit
        else:
            limit = spec.threshold + spec.band if was else spec.threshold
            crossed = value < limit
        self._crossed[key] = crossed
        if crossed or was:
            self.wakeups += 1
            return True
        self.suppressed += 1
        return False

    def stats(self) -> Dict[str, int]:
        return {"wakeups": self.wakeups, "suppressed_reports": self.suppressed}


class GaugeManager:
    """Registry + lifecycle for all gauges of one deployment."""

    def __init__(
        self,
        sim: Simulator,
        trace: Optional[Trace] = None,
        create_delay: float = 14.0,
        cached: bool = False,
    ):
        self.sim = sim
        self.trace = trace if trace is not None else Trace()
        self.create_delay = float(create_delay)
        self.cached = cached  # cached gauges survive redeploys with state
        self._gauges: Dict[str, Gauge] = {}
        self._entity_index: Dict[str, List[str]] = {}
        self.created = 0
        self.redeployments = 0

    # -- creation/deletion ---------------------------------------------------
    def create(
        self,
        gauge: Gauge,
        entities: Optional[List[str]] = None,
        immediate: bool = False,
    ) -> Gauge:
        """Register and deploy a gauge.

        ``entities`` lists the runtime entities this gauge observes (used
        by :meth:`redeploy_for`); defaults to the gauge's target.  With
        ``immediate`` the deployment delay is skipped (initial bring-up
        before the experiment's measurement window, like the paper's
        2-minute quiescent start).
        """
        if gauge.name in self._gauges:
            raise GaugeError(f"gauge {gauge.name} already exists")
        self._gauges[gauge.name] = gauge
        for entity in entities or [gauge.target]:
            self._entity_index.setdefault(entity, []).append(gauge.name)
        self.created += 1
        delay = 0.0 if immediate else self.create_delay
        self.trace.emit(self.sim.now, "gauge.create", gauge=gauge.name, delay=delay)
        if delay > 0:
            self.sim.schedule(delay, gauge.activate)
        else:
            gauge.activate()
        return gauge

    def delete(self, name: str) -> None:
        gauge = self._gauges.pop(name, None)
        if gauge is None:
            raise GaugeError(f"no gauge {name}")
        gauge.dispose()
        for names in self._entity_index.values():
            if name in names:
                names.remove(name)
        self.trace.emit(self.sim.now, "gauge.delete", gauge=name)

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            raise GaugeError(f"no gauge {name}") from None

    @property
    def gauges(self) -> List[Gauge]:
        return [self._gauges[k] for k in sorted(self._gauges)]

    def gauges_for(self, entity: str) -> List[Gauge]:
        return [
            self._gauges[n]
            for n in self._entity_index.get(entity, ())
            if n in self._gauges
        ]

    # -- redeployment (repair-time) ----------------------------------------------
    def redeploy_for(self, entity: str, window: float) -> int:
        """Blank and re-deploy every gauge observing ``entity``.

        Destroy-and-create (default) loses gauge state; with ``cached``
        the state survives (the paper's proposed improvement).  Returns
        the number of gauges redeployed.
        """
        gauges = self.gauges_for(entity)
        for gauge in gauges:
            gauge.deactivate(clear=not self.cached)
            self.sim.schedule(max(0.0, window), gauge.activate)
        if gauges:
            self.redeployments += 1
            self.trace.emit(
                self.sim.now,
                "gauge.redeploy",
                entity=entity,
                gauges=len(gauges),
                window=window,
            )
        return len(gauges)

"""Probes: the lowest monitoring level (paper Figure 4).

Probes are "deployed in the target system or physical environment" and
"announce observations via a probe bus".  The paper used AIDE-instrumented
application code (method-call events) plus Remos; our equivalents:

* :class:`ClientLatencyProbe` — hooks the client's response-delivery path
  (the instrumented method) and reports each completed request's latency;
* :class:`QueueLengthProbe` — samples a server group's request-queue
  length periodically;
* :class:`BandwidthProbe` — periodically asks Remos for the predicted
  bandwidth between a client and its *current* server group;
* :class:`UtilizationProbe` — samples a group's mean compute utilization.

All probes publish ``probe.<kind>.<target>`` messages.  A probe normally
publishes one message per observation; :class:`CallbackProbe` can instead
buffer ``batch`` observations and publish them as **one** message carrying
parallel ``times``/``values`` float64 arrays — the columnar telemetry
plane's emission mode (X8), which the generic gauges consume through
``_consume_batch`` in a single vectorized update.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.app.client import Client
from repro.app.system import GridApplication
from repro.bus.bus import EventBus
from repro.net.remos import RemosService
from repro.sim.kernel import Simulator
from repro.sim.process import Process

__all__ = [
    "ClientLatencyProbe",
    "QueueLengthProbe",
    "BandwidthProbe",
    "UtilizationProbe",
    "StageBacklogProbe",
    "StageUtilizationProbe",
    "CallbackProbe",
    "IngestProbe",
]


class _Probe:
    """Shared probe plumbing: identity, bus, enable/disable, counters.

    ``reports`` counts published messages, ``samples`` the observations
    they carried (equal unless the probe batches), and ``batches`` the
    array-carrying messages among them — the inputs to
    :meth:`~repro.runtime.core.AdaptationRuntime.telemetry_stats`.
    """

    def __init__(self, sim: Simulator, bus: EventBus, name: str):
        self.sim = sim
        self.bus = bus
        self.name = name
        self.enabled = True
        self.reports = 0
        self.samples = 0
        self.batches = 0

    def publish(self, subject: str, **attributes) -> None:
        if not self.enabled:
            return
        self.reports += 1
        self.samples += 1
        self.bus.publish_subject(subject, sender=self.name, **attributes)

    def publish_batch(self, subject: str, times, values, **attributes) -> None:
        """Publish one message carrying parallel times/values arrays."""
        if not self.enabled:
            return
        values = np.asarray(values, dtype=np.float64)
        if not values.size:
            return
        self.reports += 1
        self.samples += int(values.size)
        self.batches += 1
        self.bus.publish_subject(
            subject,
            sender=self.name,
            times=np.asarray(times, dtype=np.float64),
            values=values,
            **attributes,
        )


class ClientLatencyProbe(_Probe):
    """Event probe on a client's response path (AIDE-style instrumentation)."""

    def __init__(self, sim: Simulator, bus: EventBus, client: Client):
        super().__init__(sim, bus, f"probe.latency.{client.name}")
        self.client = client
        client.on_response(self._on_response)

    def _on_response(self, req) -> None:
        self.publish(
            f"probe.latency.{self.client.name}",
            client=self.client.name,
            rid=req.rid,
            latency=req.latency,
            group=req.group,
        )


class _PeriodicProbe(_Probe):
    """A probe that samples every ``period`` seconds once started."""

    def __init__(self, sim: Simulator, bus: EventBus, name: str, period: float):
        super().__init__(sim, bus, name)
        if period <= 0:
            raise ValueError(f"probe period must be positive, got {period}")
        self.period = float(period)
        self._process: Optional[Process] = None

    def start(self) -> None:
        if self._process is not None:
            raise RuntimeError(f"probe {self.name} already started")
        self._process = Process(self.sim, self._run(), name=self.name)

    def stop(self) -> None:
        if self._process is not None:
            self._process.kill()
            self._process = None

    def _run(self):
        while True:
            self.sample()
            yield self.sim.timeout(self.period)

    def sample(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class QueueLengthProbe(_PeriodicProbe):
    """Samples a group's waiting-request count (the paper's server load)."""

    def __init__(
        self,
        sim: Simulator,
        bus: EventBus,
        app: GridApplication,
        group: str,
        period: float = 1.0,
    ):
        super().__init__(sim, bus, f"probe.load.{group}", period)
        self.app = app
        self.group = group

    def sample(self) -> None:
        self.publish(
            f"probe.load.{self.group}",
            group=self.group,
            length=float(self.app.group(self.group).load),
        )


class BandwidthProbe(_PeriodicProbe):
    """Asks Remos for client <-> current-group bandwidth every period.

    Uses the group's *worst* active member path (see
    :meth:`GridApplication.bandwidth_between`): requests are dispatched to
    any member, so that is the bandwidth a client can count on.  The Remos
    query itself is asynchronous; the observation is published when the
    answer arrives (warm queries: ~0.5 s; cold: the paper's minutes —
    which is why the experiment pre-queries).
    """

    def __init__(
        self,
        sim: Simulator,
        bus: EventBus,
        app: GridApplication,
        remos: RemosService,
        client: str,
        period: float = 5.0,
    ):
        super().__init__(sim, bus, f"probe.bandwidth.{client}", period)
        self.app = app
        self.remos = remos
        self.client = client

    def sample(self) -> None:
        group = self.app.rq.assignment_of(self.client)
        members = self.app.group(group).active_members
        if not members:
            return
        client_machine = self.app.client(self.client).machine
        # Worst member path: one Remos query per member, publish the min.
        pending = {"n": len(members), "min": float("inf")}
        for member in members:
            ev = self.remos.get_flow(member.machine, client_machine)
            ev.add_callback(lambda e, p=pending, g=group: self._collect(e.value, p, g))

    def _collect(self, bw: float, pending: dict, group: str) -> None:
        pending["min"] = min(pending["min"], bw)
        pending["n"] -= 1
        if pending["n"] == 0:
            self.publish(
                f"probe.bandwidth.{self.client}",
                client=self.client,
                group=group,
                bandwidth=pending["min"],
            )


class StageBacklogProbe(_PeriodicProbe):
    """Samples a pipeline stage's waiting-item count.

    The pipeline scenario's analogue of :class:`QueueLengthProbe`; the
    observed application only needs ``backlog(stage) -> int``.
    """

    def __init__(
        self,
        sim: Simulator,
        bus: EventBus,
        app,
        stage: str,
        period: float = 1.0,
    ):
        super().__init__(sim, bus, f"probe.backlog.{stage}", period)
        self.app = app
        self.stage = stage

    def sample(self) -> None:
        self.publish(
            f"probe.backlog.{self.stage}",
            stage=self.stage,
            length=float(self.app.backlog(self.stage)),
        )


class StageUtilizationProbe(_PeriodicProbe):
    """Samples a pipeline stage's worker occupancy (busy / width).

    Feeds the pipeline style's shrink repair the same way
    :class:`UtilizationProbe` feeds the server-group one: an instantaneous
    snapshot the utilization gauge's EWMA smooths into a trend.
    """

    def __init__(
        self,
        sim: Simulator,
        bus: EventBus,
        app,
        stage: str,
        period: float = 1.0,
    ):
        super().__init__(sim, bus, f"probe.utilization.{stage}", period)
        self.app = app
        self.stage = stage

    def sample(self) -> None:
        stage = self.app.stage(self.stage)
        self.publish(
            f"probe.utilization.{self.stage}",
            stage=self.stage,
            utilization=stage.busy / max(1, stage.width),
        )


class CallbackProbe(_PeriodicProbe):
    """Generic periodic probe: publishes ``float(fn())`` as ``value``.

    The zero-boilerplate way to instrument a new application: pair it
    with one of the generic value gauges (:class:`WindowedMeanGauge`,
    :class:`EwmaGauge`, :class:`LatestValueGauge`), which consume the
    ``value`` attribute from ``probe.<kind>.<target>`` subjects.  The
    master/worker scenario is built entirely from these.

    With ``batch > 1`` the probe runs in columnar emission mode: each
    observation is buffered with its capture time and every ``batch``-th
    sample flushes the buffer as one ``times``/``values`` array message
    (see :meth:`_Probe.publish_batch`).  The paired gauge then performs a
    single vectorized window update per flush instead of one python-level
    update per sample; capture times ride in the message, so windowed
    aggregates see the observation times, not the delivery time.
    """

    def __init__(
        self,
        sim: Simulator,
        bus: EventBus,
        kind: str,
        target: str,
        fn: Callable[[], float],
        period: float = 1.0,
        batch: int = 1,
    ):
        super().__init__(sim, bus, f"probe.{kind}.{target}", period)
        if batch < 1:
            raise ValueError(f"probe batch must be >= 1, got {batch}")
        self.kind = kind
        self.target = target
        self.fn = fn
        self.batch = int(batch)
        self._pending_times: List[float] = []
        self._pending_values: List[float] = []

    def sample(self) -> None:
        if self.batch == 1:
            self.publish(
                f"probe.{self.kind}.{self.target}",
                target=self.target,
                value=float(self.fn()),
            )
            return
        self._pending_times.append(self.sim.now)
        self._pending_values.append(float(self.fn()))
        if len(self._pending_values) >= self.batch:
            self.flush()

    def flush(self) -> None:
        """Publish any buffered observations as one array message."""
        if not self._pending_values:
            return
        times, self._pending_times = self._pending_times, []
        values, self._pending_values = self._pending_values, []
        self.publish_batch(
            f"probe.{self.kind}.{self.target}",
            times,
            values,
            target=self.target,
        )

    def stop(self) -> None:
        self.flush()
        super().stop()


class IngestProbe(_Probe):
    """Bus-ingested telemetry: samples pushed from *outside* the plane.

    Where :class:`CallbackProbe` pulls (it samples a function on a
    period), an ingest probe is push-fed: an external application — an
    HTTP handler, an asyncio server, another process behind ``repro
    serve``'s ``POST /ingest`` — hands observations in and the probe
    publishes them on the probe bus under the usual
    ``probe.<kind>.<target>`` subject, so the downstream gauge/updater
    wiring is identical to the simulated plane's.

    ``ingest`` must run on the thread that owns the bus; external
    callers go through
    :meth:`~repro.realtime.driver.RealtimeDriver.ingest`, which hops
    onto the scheduler via ``call_soon_threadsafe``.  With ``batch > 1``
    samples buffer (with capture times) and flush as one columnar
    ``times``/``values`` array message — the PR 6 batched path — which
    is the mode a high-rate external feed should run.
    """

    def __init__(
        self,
        sim: Simulator,
        bus: EventBus,
        kind: str,
        target: str,
        batch: int = 1,
    ):
        super().__init__(sim, bus, f"probe.{kind}.{target}")
        if batch < 1:
            raise ValueError(f"probe batch must be >= 1, got {batch}")
        self.kind = kind
        self.target = target
        self.batch = int(batch)
        self._pending_times: List[float] = []
        self._pending_values: List[float] = []

    def ingest(self, value: float, time: Optional[float] = None) -> None:
        """Publish (or buffer) one externally captured observation.

        ``time`` is the capture time on the scheduler's logical
        timeline; it defaults to the current instant, which is also the
        arrival stamp ``call_soon_threadsafe`` injection gives pushed
        samples.
        """
        capture = self.sim.now if time is None else float(time)
        if self.batch == 1:
            self.publish(
                f"probe.{self.kind}.{self.target}",
                target=self.target,
                value=float(value),
            )
            return
        self._pending_times.append(capture)
        self._pending_values.append(float(value))
        if len(self._pending_values) >= self.batch:
            self.flush()

    def flush(self) -> None:
        """Publish any buffered observations as one array message."""
        if not self._pending_values:
            return
        times, self._pending_times = self._pending_times, []
        values, self._pending_values = self._pending_values, []
        self.publish_batch(
            f"probe.{self.kind}.{self.target}",
            times,
            values,
            target=self.target,
        )

    def stop(self) -> None:
        """Flush the buffered tail (the driver calls this on shutdown)."""
        self.flush()


class UtilizationProbe(_PeriodicProbe):
    """Samples a group's mean compute utilization (for the shrink repair)."""

    def __init__(
        self,
        sim: Simulator,
        bus: EventBus,
        app: GridApplication,
        group: str,
        period: float = 5.0,
    ):
        super().__init__(sim, bus, f"probe.utilization.{group}", period)
        self.app = app
        self.group = group
        self._last_busy = 0.0
        self._last_time: Optional[float] = None

    def sample(self) -> None:
        group = self.app.group(self.group)
        busy = sum(s.busy_time for s in group.members)
        now = self.sim.now
        if self._last_time is not None and now > self._last_time:
            capacity = max(1, group.replication) * (now - self._last_time)
            utilization = max(0.0, min(1.0, (busy - self._last_busy) / capacity))
            self.publish(
                f"probe.utilization.{self.group}",
                group=self.group,
                utilization=utilization,
            )
        self._last_busy = busy
        self._last_time = now

"""Monitoring infrastructure (substrate S12): probes, gauges, consumers.

The paper's three-level scheme (Figure 4):

* **probes** observe the target system and publish raw observations on the
  probe bus (``probe.*`` subjects);
* **gauges** consume probe reports, aggregate them into model-level
  properties over time windows, and publish on the gauge reporting bus
  (``gauge.*`` subjects);
* **gauge consumers** — here the :class:`ModelUpdater` — apply gauge
  reports to the architectural model and nudge the architecture manager
  to re-check constraints.

Gauge lifecycle (creation/deletion cost, redeployment on repair) is owned
by the :class:`GaugeManager`; the translator calls ``redeploy_for`` during
repairs, which blanks the affected gauges for the redeployment window —
the paper's dominant repair cost and monitoring blind spot.
"""

from repro.monitoring.probes import (
    ClientLatencyProbe,
    QueueLengthProbe,
    BandwidthProbe,
    UtilizationProbe,
    StageBacklogProbe,
    CallbackProbe,
)
from repro.monitoring.gauges import (
    Gauge,
    AverageLatencyGauge,
    LoadGauge,
    BandwidthGauge,
    UtilizationGauge,
    BacklogGauge,
    WindowedMeanGauge,
    EwmaGauge,
    LatestValueGauge,
)
from repro.monitoring.manager import GaugeManager, ThresholdGate, WakeThreshold
from repro.monitoring.consumers import ModelUpdater

__all__ = [
    "ClientLatencyProbe",
    "QueueLengthProbe",
    "BandwidthProbe",
    "UtilizationProbe",
    "StageBacklogProbe",
    "Gauge",
    "AverageLatencyGauge",
    "LoadGauge",
    "BandwidthGauge",
    "UtilizationGauge",
    "BacklogGauge",
    "CallbackProbe",
    "WindowedMeanGauge",
    "EwmaGauge",
    "LatestValueGauge",
    "GaugeManager",
    "ThresholdGate",
    "WakeThreshold",
    "ModelUpdater",
]

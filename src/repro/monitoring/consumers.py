"""Gauge consumers: the top monitoring level (paper Figure 4).

The :class:`ModelUpdater` consumes gauge reports and applies them to the
architectural model ("such information can be used... to update an
abstraction/model"), then nudges the architecture manager to re-evaluate
constraints — closing the monitoring half of the adaptation loop.
"""

from __future__ import annotations

from repro.acme.system import ArchSystem
from repro.bus.bus import EventBus
from repro.bus.messages import Message
from repro.styles.client_server import link_name

__all__ = ["ModelUpdater"]


class ModelUpdater:
    """Maps ``gauge.*`` reports onto model properties.

    Mapping (client/server style):

    =======================  ==========================================
    gauge.latency.<client>    <client>.averageLatency and the client
                              role's averageLatency (Figure 5's badRole)
    gauge.bandwidth.<client>  link_<client>.bandwidth and the client
                              role's bandwidth
    gauge.load.<group>        <group>.load
    gauge.utilization.<group> <group>.utilization
    =======================  ==========================================

    Reports about entities missing from the model (e.g. a gauge firing
    mid-repair for a just-removed element) are counted and skipped.
    """

    def __init__(
        self,
        system: ArchSystem,
        gauge_bus: EventBus,
        arch_manager=None,
    ):
        self.system = system
        self.arch_manager = arch_manager
        self.applied = 0
        self.skipped = 0
        gauge_bus.subscribe("gauge.>", self._on_report)

    def _on_report(self, message: Message) -> None:
        parts = message.subject.split(".")
        if len(parts) != 3:
            self.skipped += 1
            return
        _, kind, target = parts
        value = float(message["value"])
        handler = getattr(self, f"_apply_{kind}", None)
        if handler is None or not handler(target, value):
            self.skipped += 1
            return
        self.applied += 1
        if self.arch_manager is not None:
            self.arch_manager.evaluate()

    # -- per-kind appliers ---------------------------------------------------
    def _apply_latency(self, client: str, value: float) -> bool:
        if not self.system.has_component(client):
            return False
        self.system.component(client).set_property("averageLatency", value)
        link = link_name(client)
        if self.system.has_connector(link):
            conn = self.system.connector(link)
            if conn.has_role("client"):
                conn.role("client").set_property("averageLatency", value)
        return True

    def _apply_bandwidth(self, client: str, value: float) -> bool:
        link = link_name(client)
        if not self.system.has_connector(link):
            return False
        conn = self.system.connector(link)
        conn.set_property("bandwidth", value)
        if conn.has_role("client"):
            conn.role("client").set_property("bandwidth", value)
        return True

    def _apply_load(self, group: str, value: float) -> bool:
        if not self.system.has_component(group):
            return False
        self.system.component(group).set_property("load", value)
        return True

    def _apply_utilization(self, group: str, value: float) -> bool:
        if not self.system.has_component(group):
            return False
        self.system.component(group).set_property("utilization", value)
        return True

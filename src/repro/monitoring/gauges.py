"""Gauges: the middle monitoring level (paper Figure 4).

"Gauges consume and interpret lower-level probe measurements in terms of
higher-level model properties" — here, windowed averages reported
periodically on the gauge bus.  The windows are what give the adaptation
loop its detection lag (a latency spike must persist long enough to drag
the window mean over the threshold), matching the paper's observed delay
between cause and repair.

Probe messages arrive in two shapes.  Per-sample messages carry one
scalar attribute and are fed to ``_consume`` (the pinned scalar path);
columnar messages carry parallel ``times``/``values`` float64 arrays
(one per :class:`~repro.monitoring.probes.CallbackProbe` flush) and are
routed to ``_consume_batch``, which the generic value gauges implement
as a single vectorized update — one gauge tick of work per burst instead
of per sample (X8).
"""

from __future__ import annotations

from typing import Optional

from repro.bus.bus import EventBus, Subscription
from repro.bus.messages import Message
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.util.windows import EWMA, ColumnarWindow, SlidingWindow

__all__ = [
    "Gauge",
    "AverageLatencyGauge",
    "LoadGauge",
    "BandwidthGauge",
    "UtilizationGauge",
    "BacklogGauge",
    "WindowedMeanGauge",
    "EwmaGauge",
    "LatestValueGauge",
]


class Gauge:
    """Base gauge: consumes one probe subject, reports one model property.

    Subclasses define ``_consume(message)`` and ``_value()``; the base
    runs the report loop and handles activation state.  A gauge reports
    ``gauge.<kind>.<target>`` messages with a ``value`` attribute plus
    ``mapping`` hints for the model updater.  Subclasses that pair with
    batching probes additionally implement ``_consume_batch(times,
    values)``; the base routes any message carrying a ``values`` array
    there.
    """

    kind: str = "gauge"

    def __init__(
        self,
        sim: Simulator,
        probe_bus: EventBus,
        gauge_bus: EventBus,
        target: str,
        probe_subject: str,
        period: float = 5.0,
    ):
        if period <= 0:
            raise ValueError(f"gauge period must be positive, got {period}")
        self.sim = sim
        self.probe_bus = probe_bus
        self.gauge_bus = gauge_bus
        self.target = target
        self.period = float(period)
        self.active = False
        self.reports = 0
        self._sub: Optional[Subscription] = probe_bus.subscribe(
            probe_subject, self._on_probe
        )
        self._process: Optional[Process] = None

    @property
    def name(self) -> str:
        return f"gauge.{self.kind}.{self.target}"

    # -- lifecycle ---------------------------------------------------------
    def activate(self) -> None:
        if self.active:
            return
        self.active = True
        if self._process is None:
            self._process = Process(self.sim, self._run(), name=self.name)

    def deactivate(self, clear: bool = True) -> None:
        """Stop reporting; optionally drop accumulated window state.

        Destroy-and-recreate redeployment (the paper's default) loses the
        window; the cached-gauge ablation keeps it (``clear=False``).
        """
        self.active = False
        if clear:
            self._clear()

    def dispose(self) -> None:
        self.deactivate()
        if self._sub is not None:
            self.probe_bus.unsubscribe(self._sub)
            self._sub = None
        if self._process is not None:
            self._process.kill()
            self._process = None

    # -- machinery ------------------------------------------------------------
    def _run(self):
        while True:
            yield self.sim.timeout(self.period)
            if not self.active:
                continue
            value = self._value()
            if value is None:
                continue
            self.reports += 1
            self.gauge_bus.publish_subject(
                f"gauge.{self.kind}.{self.target}",
                sender=self.name,
                target=self.target,
                value=value,
            )

    def _on_probe(self, message: Message) -> None:
        if not self.active:
            return
        values = message.get("values")
        if values is None:
            self._consume(message)
        else:
            self._consume_batch(message.get("times"), values)

    # -- subclass API ----------------------------------------------------------
    def _consume(self, message: Message) -> None:  # pragma: no cover
        raise NotImplementedError

    def _consume_batch(self, times, values) -> None:  # pragma: no cover
        raise NotImplementedError(
            f"{type(self).__name__} does not consume batched probe messages"
        )

    def _value(self) -> Optional[float]:  # pragma: no cover
        raise NotImplementedError

    def _clear(self) -> None:  # pragma: no cover
        raise NotImplementedError


class AverageLatencyGauge(Gauge):
    """Windowed mean of completed-request latencies for one client."""

    kind = "latency"

    def __init__(
        self,
        sim,
        probe_bus,
        gauge_bus,
        client: str,
        period: float = 5.0,
        horizon: float = 30.0,
    ):
        super().__init__(
            sim,
            probe_bus,
            gauge_bus,
            client,
            probe_subject=f"probe.latency.{client}",
            period=period,
        )
        self.window = SlidingWindow(horizon)

    def _consume(self, message: Message) -> None:
        self.window.add(self.sim.now, float(message["latency"]))

    def _value(self) -> Optional[float]:
        return self.window.mean(self.sim.now)

    def _clear(self) -> None:
        self.window.clear()


class LoadGauge(Gauge):
    """Windowed mean queue length for one server group."""

    kind = "load"

    def __init__(
        self,
        sim,
        probe_bus,
        gauge_bus,
        group: str,
        period: float = 5.0,
        horizon: float = 30.0,
    ):
        super().__init__(
            sim,
            probe_bus,
            gauge_bus,
            group,
            probe_subject=f"probe.load.{group}",
            period=period,
        )
        self.window = SlidingWindow(horizon)

    def _consume(self, message: Message) -> None:
        self.window.add(self.sim.now, float(message["length"]))

    def _value(self) -> Optional[float]:
        return self.window.mean(self.sim.now)

    def _clear(self) -> None:
        self.window.clear()


class BacklogGauge(Gauge):
    """Windowed mean waiting-item count for one pipeline stage."""

    kind = "backlog"

    def __init__(
        self,
        sim,
        probe_bus,
        gauge_bus,
        stage: str,
        period: float = 5.0,
        horizon: float = 30.0,
    ):
        super().__init__(
            sim,
            probe_bus,
            gauge_bus,
            stage,
            probe_subject=f"probe.backlog.{stage}",
            period=period,
        )
        self.window = SlidingWindow(horizon)

    def _consume(self, message: Message) -> None:
        self.window.add(self.sim.now, float(message["length"]))

    def _value(self) -> Optional[float]:
        return self.window.mean(self.sim.now)

    def _clear(self) -> None:
        self.window.clear()


class BandwidthGauge(Gauge):
    """Latest Remos-predicted client <-> group bandwidth for one client."""

    kind = "bandwidth"

    def __init__(self, sim, probe_bus, gauge_bus, client: str, period: float = 5.0):
        super().__init__(
            sim,
            probe_bus,
            gauge_bus,
            client,
            probe_subject=f"probe.bandwidth.{client}",
            period=period,
        )
        self._last: Optional[float] = None

    def _consume(self, message: Message) -> None:
        self._last = float(message["bandwidth"])

    def _value(self) -> Optional[float]:
        return self._last

    def _clear(self) -> None:
        self._last = None


class _ValueGauge(Gauge):
    """Base for the generic gauges: per-instance kind, consumes ``value``.

    The application-specific gauges above each bind a probe subject and
    attribute name; these generic ones pair with
    :class:`~repro.monitoring.probes.CallbackProbe`, which always
    publishes a ``value`` attribute on ``probe.<kind>.<target>`` (or
    ``times``/``values`` arrays when batching).
    """

    def __init__(
        self, sim, probe_bus, gauge_bus, kind: str, target: str, period: float = 5.0
    ):
        super().__init__(
            sim,
            probe_bus,
            gauge_bus,
            target,
            probe_subject=f"probe.{kind}.{target}",
            period=period,
        )
        self.kind = kind  # instance attribute shadows the class default


class WindowedMeanGauge(_ValueGauge):
    """Sliding-window mean of a CallbackProbe's reported values.

    ``columnar=True`` swaps the python :class:`SlidingWindow` for the
    numpy :class:`ColumnarWindow` — identical aggregates bit for bit,
    but a batched probe flush becomes one vectorized ``add_many`` call.
    Note the two paths timestamp differently: per-sample messages use
    delivery time (the scalar reference), batched messages carry their
    capture times.
    """

    def __init__(
        self,
        sim,
        probe_bus,
        gauge_bus,
        kind: str,
        target: str,
        period: float = 5.0,
        horizon: float = 30.0,
        columnar: bool = False,
    ):
        super().__init__(sim, probe_bus, gauge_bus, kind, target, period=period)
        self.columnar = bool(columnar)
        self.window = ColumnarWindow(horizon) if columnar else SlidingWindow(horizon)

    def _consume(self, message: Message) -> None:
        self.window.add(self.sim.now, float(message["value"]))

    def _consume_batch(self, times, values) -> None:
        self.window.add_many(times, values)

    def _value(self) -> Optional[float]:
        return self.window.mean(self.sim.now)

    def _clear(self) -> None:
        self.window.clear()


class EwmaGauge(_ValueGauge):
    """Exponentially-weighted mean of a CallbackProbe's reported values."""

    def __init__(
        self,
        sim,
        probe_bus,
        gauge_bus,
        kind: str,
        target: str,
        period: float = 5.0,
        tau: float = 60.0,
    ):
        super().__init__(sim, probe_bus, gauge_bus, kind, target, period=period)
        self.tau = tau
        self._ewma = EWMA(tau)

    def _consume(self, message: Message) -> None:
        self._ewma.add(self.sim.now, float(message["value"]))

    def _consume_batch(self, times, values) -> None:
        # The EWMA fold is inherently sequential; batching still saves
        # the per-sample bus/message overhead upstream.
        add = self._ewma.add
        for time, value in zip(times, values):
            add(float(time), float(value))

    def _value(self) -> Optional[float]:
        return self._ewma.value

    def _clear(self) -> None:
        self._ewma = EWMA(self.tau)


class LatestValueGauge(_ValueGauge):
    """Most recent value reported by a CallbackProbe (no smoothing)."""

    def __init__(
        self, sim, probe_bus, gauge_bus, kind: str, target: str, period: float = 5.0
    ):
        super().__init__(sim, probe_bus, gauge_bus, kind, target, period=period)
        self._last: Optional[float] = None

    def _consume(self, message: Message) -> None:
        self._last = float(message["value"])

    def _consume_batch(self, times, values) -> None:
        self._last = float(values[-1])

    def _value(self) -> Optional[float]:
        return self._last

    def _clear(self) -> None:
        self._last = None


class UtilizationGauge(Gauge):
    """EWMA of a group's compute utilization (drives the shrink repair)."""

    kind = "utilization"

    def __init__(
        self,
        sim,
        probe_bus,
        gauge_bus,
        group: str,
        period: float = 5.0,
        tau: float = 60.0,
    ):
        super().__init__(
            sim,
            probe_bus,
            gauge_bus,
            group,
            probe_subject=f"probe.utilization.{group}",
            period=period,
        )
        self.tau = tau
        self._ewma = EWMA(tau)

    def _consume(self, message: Message) -> None:
        self._ewma.add(self.sim.now, float(message["utilization"]))

    def _value(self) -> Optional[float]:
        return self._ewma.value

    def _clear(self) -> None:
        self._ewma = EWMA(self.tau)

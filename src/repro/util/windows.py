"""Time-windowed statistics used by gauges and workload schedules.

``SlidingWindow`` backs the latency/load gauges: the paper's gauges report
*average* behaviour over a recent horizon, which is what introduces the
detection lag visible in Figures 11-13.  ``StepFunction`` expresses the
Figure 7 stepping schedules for bandwidth competition and request load.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from typing import Deque, Iterable, List, Optional, Sequence, Tuple

__all__ = ["SlidingWindow", "EWMA", "StepFunction"]


class SlidingWindow:
    """Average of timestamped samples within the trailing ``horizon`` seconds.

    Samples must be added with non-decreasing timestamps (simulation time is
    monotone).  ``mean(now)`` first expires samples older than
    ``now - horizon``.

    Aggregates are O(1) per query: the running sum backs ``mean``/``rate``,
    and a monotonic max-deque backs ``maximum`` — every sample is pushed and
    popped at most once, so the amortized cost per ``add`` is constant even
    though gauges query these every report period.
    """

    def __init__(self, horizon: float):
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self.horizon = float(horizon)
        self._samples: Deque[Tuple[float, float]] = deque()
        # Monotonically non-increasing values; front holds the window max.
        self._maxq: Deque[Tuple[float, float]] = deque()
        self._sum = 0.0
        self._last_time: Optional[float] = None

    def add(self, time: float, value: float) -> None:
        """Record ``value`` observed at simulation ``time``."""
        if self._last_time is not None and time < self._last_time:
            raise ValueError(
                f"samples must be time-ordered: got {time} after {self._last_time}"
            )
        self._last_time = time
        value = float(value)
        self._samples.append((time, value))
        self._sum += value
        maxq = self._maxq
        while maxq and maxq[-1][1] <= value:
            maxq.pop()
        maxq.append((time, value))

    def _expire(self, now: float) -> None:
        cutoff = now - self.horizon
        samples = self._samples
        while samples and samples[0][0] < cutoff:
            _, v = samples.popleft()
            self._sum -= v
        maxq = self._maxq
        while maxq and maxq[0][0] < cutoff:
            maxq.popleft()

    def mean(self, now: float) -> Optional[float]:
        """Mean of samples in ``[now - horizon, now]``; None when empty."""
        self._expire(now)
        if not self._samples:
            return None
        return self._sum / len(self._samples)

    def maximum(self, now: float) -> Optional[float]:
        """Largest live sample; O(1) via the monotonic deque."""
        self._expire(now)
        if not self._samples:
            return None
        return self._maxq[0][1]

    def count(self, now: float) -> int:
        """Number of live samples in the window."""
        self._expire(now)
        return len(self._samples)

    def rate(self, now: float) -> float:
        """Samples per second over the window (arrival-rate estimator)."""
        self._expire(now)
        if not self._samples:
            return 0.0
        return len(self._samples) / self.horizon

    def clear(self) -> None:
        self._samples.clear()
        self._maxq.clear()
        self._sum = 0.0
        self._last_time = None


class EWMA:
    """Exponentially-weighted moving average with a time constant.

    The weight of an old observation decays as ``exp(-dt / tau)``; this is
    the continuous-time analogue of the classic discrete EWMA and is robust
    to irregular sampling.
    """

    def __init__(self, tau: float, initial: Optional[float] = None):
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        self.tau = float(tau)
        self._value: Optional[float] = initial
        self._time: Optional[float] = None

    @property
    def value(self) -> Optional[float]:
        return self._value

    def add(self, time: float, value: float) -> float:
        """Fold in an observation; returns the updated average."""
        import math

        if self._value is None or self._time is None:
            self._value = float(value)
        else:
            if time < self._time:
                raise ValueError("EWMA samples must be time-ordered")
            alpha = 1.0 - math.exp(-(time - self._time) / self.tau)
            self._value += alpha * (float(value) - self._value)
        self._time = time
        return self._value


class StepFunction:
    """Right-continuous piecewise-constant function of time.

    Built from ``(time, value)`` breakpoints: the function takes ``value``
    from ``time`` (inclusive) until the next breakpoint.  Times before the
    first breakpoint return ``default``.

    This is exactly the shape of the paper's Figure 7 generators.
    """

    def __init__(
        self,
        breakpoints: Iterable[Tuple[float, float]],
        default: float = 0.0,
    ):
        pts: List[Tuple[float, float]] = sorted((float(t), float(v)) for t, v in breakpoints)
        times = [t for t, _ in pts]
        if len(set(times)) != len(times):
            raise ValueError("StepFunction breakpoints must have distinct times")
        self._times: List[float] = times
        self._values: List[float] = [v for _, v in pts]
        self.default = float(default)

    def __call__(self, t: float) -> float:
        i = bisect_right(self._times, t)
        if i == 0:
            return self.default
        return self._values[i - 1]

    @property
    def breakpoints(self) -> Sequence[Tuple[float, float]]:
        return list(zip(self._times, self._values))

    def change_times(self, start: float, end: float) -> List[float]:
        """Breakpoint times within ``(start, end]`` (for event scheduling)."""
        return [t for t in self._times if start < t <= end]

    def sample(self, times: Iterable[float]) -> List[float]:
        """Vector-evaluate at each time (useful for plotting series)."""
        return [self(t) for t in times]

"""Time-windowed statistics used by gauges and workload schedules.

``SlidingWindow`` backs the latency/load gauges: the paper's gauges report
*average* behaviour over a recent horizon, which is what introduces the
detection lag visible in Figures 11-13.  ``ColumnarWindow`` is its
vectorized twin — same aggregates, bit for bit, but fed whole probe
batches at a time (the X8 columnar telemetry plane).  ``StepFunction``
expresses the Figure 7 stepping schedules for bandwidth competition and
request load.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections import deque
from typing import Deque, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["SlidingWindow", "ColumnarWindow", "EWMA", "StepFunction"]


class SlidingWindow:
    """Average of timestamped samples within the trailing ``horizon`` seconds.

    Samples must be added with non-decreasing timestamps (simulation time is
    monotone).  ``mean(now)`` first expires samples older than
    ``now - horizon``.

    Aggregates are O(1) per query: the running sum backs ``mean``/``rate``,
    and a monotonic max-deque backs ``maximum`` — every sample is pushed and
    popped at most once, so the amortized cost per ``add`` is constant even
    though gauges query these every report period.

    This scalar implementation is the pinned bit-for-bit reference for the
    serial fingerprints; :class:`ColumnarWindow` must agree with it exactly
    (see ``tests/test_columnar_telemetry.py``).
    """

    def __init__(self, horizon: float):
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self.horizon = float(horizon)
        self._samples: Deque[Tuple[float, float]] = deque()
        # Monotonically non-increasing values; front holds the window max.
        self._maxq: Deque[Tuple[float, float]] = deque()
        self._sum = 0.0
        self._last_time: Optional[float] = None

    def add(self, time: float, value: float) -> None:
        """Record ``value`` observed at simulation ``time``."""
        if self._last_time is not None and time < self._last_time:
            raise ValueError(
                f"samples must be time-ordered: got {time} after {self._last_time}"
            )
        value = float(value)
        if not math.isfinite(value):
            # A NaN/inf sample would poison the running sum (and a NaN the
            # max-deque comparisons) for the rest of the window's life.
            raise ValueError(f"sample value must be finite, got {value}")
        self._last_time = time
        self._samples.append((time, value))
        self._sum += value
        maxq = self._maxq
        while maxq and maxq[-1][1] <= value:
            maxq.pop()
        maxq.append((time, value))

    def add_many(self, times: Sequence[float], values: Sequence[float]) -> None:
        """Scalar fallback for the batched gauge path: a loop of ``add``."""
        if len(times) != len(values):
            raise ValueError("times and values must have equal length")
        for time, value in zip(times, values):
            self.add(float(time), float(value))

    def _expire(self, now: float) -> None:
        cutoff = now - self.horizon
        samples = self._samples
        while samples and samples[0][0] < cutoff:
            _, v = samples.popleft()
            self._sum -= v
        maxq = self._maxq
        while maxq and maxq[0][0] < cutoff:
            maxq.popleft()

    def mean(self, now: float) -> Optional[float]:
        """Mean of samples in ``[now - horizon, now]``; None when empty."""
        self._expire(now)
        if not self._samples:
            return None
        return self._sum / len(self._samples)

    def maximum(self, now: float) -> Optional[float]:
        """Largest live sample; O(1) via the monotonic deque."""
        self._expire(now)
        if not self._samples:
            return None
        return self._maxq[0][1]

    def count(self, now: float) -> int:
        """Number of live samples in the window."""
        self._expire(now)
        return len(self._samples)

    def rate(self, now: float) -> float:
        """Samples per second over the window (arrival-rate estimator)."""
        self._expire(now)
        if not self._samples:
            return 0.0
        return len(self._samples) / self.horizon

    def clear(self) -> None:
        self._samples.clear()
        self._maxq.clear()
        self._sum = 0.0
        self._last_time = None


def _accumulate_into(total: float, values: np.ndarray, ufunc) -> float:
    """Fold ``values`` into ``total`` with strictly sequential IEEE ops.

    ``np.add.accumulate``/``np.subtract.accumulate`` compute
    ``out[i] = out[i-1] op in[i]`` left to right (pairwise summation only
    applies to ``reduce``), so seeding the accumulator as element 0
    reproduces the scalar ``+=``/``-=`` loop bit for bit in float64.
    """
    if not values.size:
        return total
    acc = np.empty(values.size + 1, dtype=np.float64)
    acc[0] = total
    acc[1:] = values
    return float(ufunc.accumulate(acc)[-1])


class ColumnarWindow:
    """Columnar twin of :class:`SlidingWindow`: numpy (time, value) columns.

    Samples live in flat float64 arrays managed as a ring: expiry advances
    ``_start``, appends advance ``_end``, and the arrays are compacted (and
    doubled when genuinely full) once the tail runs out of room — amortized
    O(1) per sample.  ``add_many`` ingests a whole probe batch in a handful
    of vectorized operations, which is where the X8 telemetry speedup comes
    from (see ``benchmarks/bench_x8_telemetry.py``).

    Aggregates are **bit-for-bit identical** to the scalar reference:

    * the running sum is maintained via :func:`_accumulate_into`, the exact
      operation sequence of the scalar ``+=`` on add and ``-=`` on expiry;
    * ``maximum`` uses two segments — the front carries suffix maxima (one
      ``np.maximum.accumulate`` over the reversed slice each time the
      segments flip), the back a running max; max is exact regardless of
      grouping, and both segments pay amortized O(1) per sample.

    ``tests/test_columnar_telemetry.py`` pins the equivalence over
    randomized streams.
    """

    def __init__(self, horizon: float, capacity: int = 64):
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self.horizon = float(horizon)
        capacity = max(int(capacity), 8)
        self._times = np.empty(capacity, dtype=np.float64)
        self._values = np.empty(capacity, dtype=np.float64)
        # Suffix maxima over the front segment [_start, _mid); the back
        # segment [_mid, _end) is covered by the running ``_back_max``.
        self._suffix = np.empty(capacity, dtype=np.float64)
        self._start = 0
        self._mid = 0
        self._end = 0
        self._sum = 0.0
        self._back_max = -math.inf
        self._last_time: Optional[float] = None

    def _reserve(self, extra: int) -> None:
        """Make room for ``extra`` appends at ``_end`` (compact/regrow)."""
        if self._end + extra <= self._times.shape[0]:
            return
        live = self._end - self._start
        capacity = self._times.shape[0]
        while capacity < live + extra:
            capacity *= 2
        for name in ("_times", "_values", "_suffix"):
            old = getattr(self, name)
            fresh = np.empty(capacity, dtype=np.float64)
            fresh[:live] = old[self._start : self._end]
            setattr(self, name, fresh)
        self._mid -= self._start
        self._end = live
        self._start = 0

    def add(self, time: float, value: float) -> None:
        """Record one ``value`` observed at simulation ``time``."""
        if self._last_time is not None and time < self._last_time:
            raise ValueError(
                f"samples must be time-ordered: got {time} after {self._last_time}"
            )
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"sample value must be finite, got {value}")
        self._last_time = time
        self._reserve(1)
        end = self._end
        self._times[end] = time
        self._values[end] = value
        self._end = end + 1
        self._sum += value
        if value > self._back_max:
            self._back_max = value

    def add_many(self, times, values) -> None:
        """Ingest a whole time-ordered batch of samples, vectorized."""
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if times.ndim != 1 or times.shape != values.shape:
            raise ValueError("times and values must be 1-D and equally long")
        if not times.size:
            return
        if not np.isfinite(values).all():
            raise ValueError("sample values must be finite")
        if times.size > 1 and bool(np.any(times[1:] < times[:-1])):
            raise ValueError("batch samples must be time-ordered")
        first = float(times[0])
        if self._last_time is not None and first < self._last_time:
            raise ValueError(
                f"samples must be time-ordered: got {first} after {self._last_time}"
            )
        self._last_time = float(times[-1])
        count = times.size
        self._reserve(count)
        end = self._end
        self._times[end : end + count] = times
        self._values[end : end + count] = values
        self._end = end + count
        self._sum = _accumulate_into(self._sum, values, np.add)
        batch_max = float(values.max())
        if batch_max > self._back_max:
            self._back_max = batch_max

    def _expire(self, now: float) -> None:
        cutoff = now - self.horizon
        start, end = self._start, self._end
        if start == end or self._times[start] >= cutoff:
            return
        expired = int(np.searchsorted(self._times[start:end], cutoff, side="left"))
        self._sum = _accumulate_into(
            self._sum, self._values[start : start + expired], np.subtract
        )
        start += expired
        self._start = start
        if start >= self._mid:
            # Front segment exhausted: the back becomes the new front.
            if start < end:
                self._suffix[start:end] = np.maximum.accumulate(
                    self._values[start:end][::-1]
                )[::-1]
            self._mid = end
            self._back_max = -math.inf

    def mean(self, now: float) -> Optional[float]:
        """Mean of samples in ``[now - horizon, now]``; None when empty."""
        self._expire(now)
        count = self._end - self._start
        if not count:
            return None
        return self._sum / count

    def maximum(self, now: float) -> Optional[float]:
        """Largest live sample; amortized O(1) via the two segments."""
        self._expire(now)
        if self._start == self._end:
            return None
        best = self._back_max
        if self._start < self._mid and self._suffix[self._start] > best:
            best = self._suffix[self._start]
        return float(best)

    def count(self, now: float) -> int:
        """Number of live samples in the window."""
        self._expire(now)
        return self._end - self._start

    def rate(self, now: float) -> float:
        """Samples per second over the window (arrival-rate estimator)."""
        self._expire(now)
        count = self._end - self._start
        if not count:
            return 0.0
        return count / self.horizon

    def clear(self) -> None:
        self._start = self._mid = self._end = 0
        self._sum = 0.0
        self._back_max = -math.inf
        self._last_time = None


class EWMA:
    """Exponentially-weighted moving average with a time constant.

    The weight of an old observation decays as ``exp(-dt / tau)``; this is
    the continuous-time analogue of the classic discrete EWMA and is robust
    to irregular sampling.
    """

    def __init__(self, tau: float, initial: Optional[float] = None):
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        self.tau = float(tau)
        self._value: Optional[float] = initial
        self._time: Optional[float] = None

    @property
    def value(self) -> Optional[float]:
        return self._value

    def add(self, time: float, value: float) -> float:
        """Fold in an observation; returns the updated average."""
        value = float(value)
        if not math.isfinite(value):
            # One NaN/inf sample would contaminate every later average.
            raise ValueError(f"sample value must be finite, got {value}")
        if self._value is None or self._time is None:
            self._value = value
        else:
            if time < self._time:
                raise ValueError("EWMA samples must be time-ordered")
            alpha = 1.0 - math.exp(-(time - self._time) / self.tau)
            self._value += alpha * (value - self._value)
        self._time = time
        return self._value


class StepFunction:
    """Right-continuous piecewise-constant function of time.

    Built from ``(time, value)`` breakpoints: the function takes ``value``
    from ``time`` (inclusive) until the next breakpoint.  Times before the
    first breakpoint return ``default``.

    This is exactly the shape of the paper's Figure 7 generators.
    """

    def __init__(
        self,
        breakpoints: Iterable[Tuple[float, float]],
        default: float = 0.0,
    ):
        pts: List[Tuple[float, float]] = sorted(
            (float(t), float(v)) for t, v in breakpoints
        )
        times = [t for t, _ in pts]
        if len(set(times)) != len(times):
            raise ValueError("StepFunction breakpoints must have distinct times")
        self._times: List[float] = times
        self._values: List[float] = [v for _, v in pts]
        self.default = float(default)

    def __call__(self, t: float) -> float:
        i = bisect_right(self._times, t)
        if i == 0:
            return self.default
        return self._values[i - 1]

    @property
    def breakpoints(self) -> Sequence[Tuple[float, float]]:
        return list(zip(self._times, self._values))

    def change_times(self, start: float, end: float) -> List[float]:
        """Breakpoint times within ``(start, end]`` (for event scheduling)."""
        return [t for t in self._times if start < t <= end]

    def sample(self, times: Iterable[float]) -> List[float]:
        """Vector-evaluate at each time (useful for plotting series)."""
        return [self(t) for t in times]

"""Deterministic random-number management.

The paper controlled its experiment by "seeding the clients so that the size
of requests and responses occurred in the same sequence in both experiments"
(§5.1).  We generalize: every stochastic consumer (each client, each traffic
generator) receives its *own* ``numpy`` Generator derived from a root seed
and a stable string key.  Control and adapted runs built from the same root
seed therefore see identical request sequences regardless of how the
adaptation machinery perturbs event interleaving.
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np

__all__ = ["SeedSequenceFactory", "derive_rng"]


def _key_to_int(key: str) -> int:
    """Map a string key to a stable 64-bit integer (sha256-based)."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(root_seed: int, key: str) -> np.random.Generator:
    """Return a Generator deterministically derived from ``(root_seed, key)``.

    Distinct keys yield statistically independent streams; the same pair
    always yields the same stream.
    """
    return np.random.default_rng(np.random.SeedSequence([root_seed, _key_to_int(key)]))


class SeedSequenceFactory:
    """Hands out named, independent random streams from one root seed.

    >>> f = SeedSequenceFactory(7)
    >>> a = f.rng("client.C1")
    >>> b = f.rng("client.C2")

    Calling :meth:`rng` twice with the same key returns a *fresh* generator
    positioned at the start of the same stream, which is exactly what the
    control-vs-adapted methodology needs.
    """

    def __init__(self, root_seed: int = 0) -> None:
        if not isinstance(root_seed, (int, np.integer)):
            raise TypeError(f"root_seed must be an int, got {type(root_seed).__name__}")
        self.root_seed = int(root_seed)

    def rng(self, key: str) -> np.random.Generator:
        """Return a fresh generator for stream ``key``."""
        return derive_rng(self.root_seed, key)

    def spawn(self, key: str) -> "SeedSequenceFactory":
        """Derive a child factory (for nested subsystems)."""
        return SeedSequenceFactory(_key_to_int(f"{self.root_seed}/{key}") % (2**63))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedSequenceFactory(root_seed={self.root_seed})"


def optional_rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    """Return ``rng`` or a default-seeded generator if ``None``."""
    return rng if rng is not None else np.random.default_rng(0)

"""Plain-text rendering of tables and time series.

The benchmark harness must "print the same rows/series the paper reports";
since the environment is headless, figures are rendered as aligned text
tables and coarse ASCII sparkline strips rather than images.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

__all__ = ["render_table", "render_series", "ascii_sparkline"]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned monospace table.

    Cells are str()-ed; floats are shown with 4 significant digits.
    """

    def cell(v: object) -> str:
        if isinstance(v, float):
            if v == 0:
                return "0"
            if abs(v) >= 1e5 or abs(v) < 1e-3:
                return f"{v:.3g}"
            return f"{v:.4g}"
        return str(v)

    str_rows: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


_SPARK_CHARS = " .:-=+*#%@"


def ascii_sparkline(values: Sequence[float], log: bool = False) -> str:
    """Map values onto a 10-level character strip ('.' low ... '@' high).

    ``log=True`` uses a log10 scale (the paper's figures are log-scale).
    Non-finite or non-positive values under log scale render as spaces.
    """
    finite = [v for v in values if v is not None and math.isfinite(v)]
    if log:
        finite = [v for v in finite if v > 0]
    if not finite:
        return " " * len(values)
    xs = [math.log10(v) if log else v for v in finite]
    lo, hi = min(xs), max(xs)
    span = hi - lo or 1.0

    out = []
    for v in values:
        if v is None or not math.isfinite(v) or (log and v <= 0):
            out.append(" ")
            continue
        x = math.log10(v) if log else v
        idx = int((x - lo) / span * (len(_SPARK_CHARS) - 1))
        out.append(_SPARK_CHARS[idx])
    return "".join(out)


def render_series(
    name: str,
    times: Sequence[float],
    values: Sequence[float],
    log: bool = False,
    width: int = 90,
    unit: str = "",
) -> str:
    """Render a time series as a labelled sparkline plus summary stats.

    Downsamples to at most ``width`` points by striding.
    """
    if len(times) != len(values):
        raise ValueError("times and values must have the same length")
    if not times:
        return f"{name}: (empty)"
    stride = max(1, len(values) // width)
    sampled = list(values[::stride])
    strip = ascii_sparkline(sampled, log=log)
    finite = [v for v in values if v is not None and math.isfinite(v)]
    if finite:
        stats = (
            f"min={min(finite):.4g} max={max(finite):.4g} "
            f"last={finite[-1]:.4g}{(' ' + unit) if unit else ''}"
        )
    else:
        stats = "no finite samples"
    scale = "log" if log else "lin"
    return (
        f"{name} [{times[0]:.0f}s..{times[-1]:.0f}s, {scale}]\n"
        f"  |{strip}|\n"
        f"  {stats}"
    )

"""Shared utilities: id generation, deterministic RNG, sliding windows,
units, and plain-text table rendering."""

from repro.util.ids import IdGenerator, fresh_name
from repro.util.rng import SeedSequenceFactory, derive_rng
from repro.util.windows import SlidingWindow, EWMA, StepFunction
from repro.util.units import (
    KBPS,
    MBPS,
    BYTE,
    KB,
    MB,
    bits,
    kilobytes,
    megabits_per_second,
    format_bandwidth,
    format_duration,
)
from repro.util.tables import render_table, render_series

__all__ = [
    "IdGenerator",
    "fresh_name",
    "SeedSequenceFactory",
    "derive_rng",
    "SlidingWindow",
    "EWMA",
    "StepFunction",
    "KBPS",
    "MBPS",
    "BYTE",
    "KB",
    "MB",
    "bits",
    "kilobytes",
    "megabits_per_second",
    "format_bandwidth",
    "format_duration",
    "render_table",
    "render_series",
]

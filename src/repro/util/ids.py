"""Deterministic, human-readable identifier generation.

The simulation, the bus, and the architectural model all need unique names.
Randomized ids (uuid4) would break run-to-run determinism, so ids are
sequential per prefix: ``flow-1``, ``flow-2``, ``gauge-1``...
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict

__all__ = ["IdGenerator", "fresh_name"]


class IdGenerator:
    """Produces ``prefix-N`` names with an independent counter per prefix.

    Instances are cheap; each subsystem owning an ``IdGenerator`` is fully
    deterministic and isolated from the others.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = defaultdict(int)

    def next(self, prefix: str) -> str:
        """Return the next unique name for ``prefix``."""
        self._counters[prefix] += 1
        return f"{prefix}-{self._counters[prefix]}"

    def peek(self, prefix: str) -> int:
        """Return how many names have been issued for ``prefix``."""
        return self._counters[prefix]

    def reset(self) -> None:
        """Forget all counters (fresh numbering)."""
        self._counters.clear()


_GLOBAL = IdGenerator()


def fresh_name(prefix: str) -> str:
    """Module-level convenience using a process-global generator.

    Only suitable for throwaway scripts and tests; library code should own
    an :class:`IdGenerator` so that runs are reproducible in isolation.
    """
    return _GLOBAL.next(prefix)

"""Unit conventions and formatting helpers.

Internal conventions used throughout the library:

* **time** — seconds (floats);
* **data sizes** — bytes;
* **bandwidth** — bits per second (the networking convention; the paper's
  figures are labelled in Mbps and its threshold is 10 Kbps).
"""

from __future__ import annotations

__all__ = [
    "BYTE",
    "KB",
    "MB",
    "KBPS",
    "MBPS",
    "bits",
    "kilobytes",
    "megabits_per_second",
    "format_bandwidth",
    "format_duration",
]

BYTE = 1
KB = 1000  # network KB (the paper's "20K" responses); decimal, not KiB
MB = 1000 * 1000

KBPS = 1_000.0  # bits per second
MBPS = 1_000_000.0


def bits(nbytes: float) -> float:
    """Bytes -> bits."""
    return nbytes * 8.0


def kilobytes(n: float) -> float:
    """KB -> bytes."""
    return n * KB


def megabits_per_second(mbps: float) -> float:
    """Mbps -> bits/second."""
    return mbps * MBPS


def format_bandwidth(bps: float) -> str:
    """Human-readable bandwidth: '9.50 Mbps', '10.0 Kbps', '512 bps'."""
    if bps >= MBPS:
        return f"{bps / MBPS:.2f} Mbps"
    if bps >= KBPS:
        return f"{bps / KBPS:.1f} Kbps"
    return f"{bps:.0f} bps"


def format_duration(seconds: float) -> str:
    """Human-readable duration: '30.0 s', '2.5 min', '125 ms'."""
    if seconds >= 60:
        return f"{seconds / 60:.1f} min"
    if seconds >= 1:
        return f"{seconds:.1f} s"
    return f"{seconds * 1000:.0f} ms"

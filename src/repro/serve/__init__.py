"""``repro serve``: the control plane's HTTP front door.

A thin, dependency-free service layer (stdlib ``http.server`` only)
exposing the repro over four endpoints:

* ``GET /health`` — liveness: uptime, whether a runtime/driver is
  attached, how many runs have completed;
* ``GET /stats`` — the current
  :class:`~repro.runtime.stats.RuntimeStats` snapshot as strict JSON;
* ``GET /repair-history`` — the repair records
  (:meth:`~repro.repair.history.RepairRecord.as_dict` shape);
* ``POST /run`` — execute a registered scenario synchronously and
  return its summary;
* ``POST /ingest`` — push one external telemetry sample into an
  attached realtime driver's bus-ingested probe.

The request logic lives in :class:`~repro.serve.app.ServeApp`, a pure
``(method, path, body) -> (status, payload)`` object with no sockets —
that is what the contract tests exercise.  :mod:`repro.serve.http`
wraps it in a ``ThreadingHTTPServer`` with clean SIGTERM/SIGINT
shutdown.  See docs/serving.md.
"""

from repro.serve.app import ServeApp
from repro.serve.http import ReproHTTPServer, run_server

__all__ = ["ServeApp", "ReproHTTPServer", "run_server"]

"""The serve layer's request logic, free of any socket machinery.

:class:`ServeApp` maps ``(method, path, body)`` to ``(status code,
JSON-ready payload)``.  Keeping it a plain object does two jobs: the
endpoint contract tests drive it directly (no ports, no threads, no
flakiness), and the HTTP wrapper in :mod:`repro.serve.http` stays a
dumb pipe.

Stats and history resolve through a precedence chain so the same
endpoints work in every deployment shape:

1. an attached :class:`~repro.realtime.driver.RealtimeDriver` (live
   adaptation — counters move in wall time);
2. an attached never-started :class:`~repro.runtime.core.AdaptationRuntime`
   (a scenario's control plane built for inspection — all-zero
   counters with the full section shape);
3. the most recent ``POST /run`` result;
4. an empty :class:`~repro.runtime.stats.RuntimeStats`.

Every payload passes ``json.dumps(..., allow_nan=False)`` — the strict
JSON contract the stats plane already guarantees.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro import api
from repro.errors import ReproError
from repro.realtime.clock import Clock, WallClock
from repro.realtime.driver import RealtimeDriver
from repro.runtime.core import AdaptationRuntime
from repro.runtime.stats import RuntimeStats

__all__ = ["ServeApp"]

Response = Tuple[int, Dict[str, Any]]


class ServeApp:
    """Routes serve-layer requests; holds no sockets, spawns no threads."""

    def __init__(
        self,
        driver: Optional[RealtimeDriver] = None,
        runtime: Optional[AdaptationRuntime] = None,
        clock: Optional[Clock] = None,
    ):
        self.driver = driver
        self.runtime = runtime
        self.clock = clock if clock is not None else WallClock()
        self.run_count = 0
        self.last_result: Optional[api.RunResult] = None

    # -- dispatch ----------------------------------------------------------
    def handle(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Response:
        """One request in, ``(status, payload)`` out.  Never raises."""
        path = path.rstrip("/") or "/"
        routes = {
            "/health": ("GET", self._health),
            "/stats": ("GET", self._stats),
            "/repair-history": ("GET", self._repair_history),
            "/run": ("POST", self._run),
            "/ingest": ("POST", self._ingest),
        }
        if path not in routes:
            return 404, {"error": f"no such endpoint: {path}"}
        expected, endpoint = routes[path]
        if method != expected:
            return 405, {"error": f"{path} only answers {expected}"}
        if expected == "POST":
            if body is None or not isinstance(body, dict):
                return 400, {"error": f"{path} needs a JSON object body"}
            return endpoint(body)
        return endpoint()

    # -- endpoints ---------------------------------------------------------
    def _health(self) -> Response:
        return 200, {
            "status": "ok",
            "uptime_s": round(self.clock.elapsed(), 3),
            "driver_attached": self.driver is not None,
            "runtime_attached": self.runtime is not None,
            "runs": self.run_count,
        }

    def _current_stats(self) -> RuntimeStats:
        if self.driver is not None:
            return self.driver.stats()
        if self.runtime is not None:
            return self.runtime.stats()
        if self.last_result is not None and self.last_result.stats is not None:
            return self.last_result.stats
        return RuntimeStats()

    def _stats(self) -> Response:
        return 200, self._current_stats().to_dict()

    def _history_records(self) -> List[Dict[str, Any]]:
        if self.driver is not None:
            history = self.driver.history
        elif self.runtime is not None:
            history = self.runtime.history
        elif self.last_result is not None:
            return self.last_result.history_dicts()
        else:
            return []
        return [record.as_dict() for record in history]

    def _repair_history(self) -> Response:
        records = self._history_records()
        return 200, {"count": len(records), "records": records}

    def _run(self, body: Dict[str, Any]) -> Response:
        scenario = body.get("scenario")
        if not isinstance(scenario, str) or not scenario:
            return 400, {"error": "/run needs a scenario name"}
        try:
            config = api.make_config(
                scenario=scenario,
                adaptation=bool(body.get("adaptation", True)),
                seed=int(body.get("seed", 2002)),
                fast=bool(body.get("fast", True)),
                overrides=body.get("set") or None,
            )
            result = api.run(config)
        except (ReproError, TypeError, ValueError) as exc:
            return 400, {"error": str(exc)}
        self.run_count += 1
        self.last_result = result
        return 200, {"summary": result.summary()}

    def _ingest(self, body: Dict[str, Any]) -> Response:
        if self.driver is None:
            return 409, {"error": "no realtime driver attached"}
        kind, target = body.get("kind"), body.get("target")
        if not isinstance(kind, str) or not isinstance(target, str):
            return 400, {"error": "/ingest needs string kind and target"}
        try:
            value = float(body["value"])
        except (KeyError, TypeError, ValueError):
            return 400, {"error": "/ingest needs a numeric value"}
        try:
            self.driver.ingest(kind, target, value)
        except KeyError as exc:
            return 400, {"error": str(exc)}
        return 200, {"ingested": True, "total": self.driver.ingested}

"""The socket half of ``repro serve``: stdlib HTTP around a ServeApp.

A ``ThreadingHTTPServer`` whose handler does exactly three things —
parse the body, call :meth:`~repro.serve.app.ServeApp.handle`, write
the JSON — plus clean shutdown: SIGTERM/SIGINT both stop the accept
loop, so a supervising process (or CI's ``timeout`` wrapper) gets exit
code 0 and no orphaned listeners.  No third-party dependency, nothing
async; concurrency is one thread per request, which is plenty for an
inspection surface.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.serve.app import ServeApp

__all__ = ["ReproHTTPServer", "run_server"]


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the serve layer is quiet; CI greps stdout for JSON only

    def _dispatch(self) -> None:
        app: ServeApp = self.server.serve_app  # type: ignore[attr-defined]
        body = None
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length > 0 else b""
        if raw:
            try:
                body = json.loads(raw)
            except ValueError:
                self._reply(400, {"error": "request body is not valid JSON"})
                return
        try:
            status, payload = app.handle(self.command, self.path, body)
        except Exception as exc:  # a route bug must not kill the server
            status, payload = 500, {"error": f"internal error: {exc!r}"}
        self._reply(status, payload)

    def _reply(self, status: int, payload: dict) -> None:
        data = json.dumps(payload, allow_nan=False, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    do_GET = _dispatch
    do_POST = _dispatch


class ReproHTTPServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer bound to one :class:`ServeApp`."""

    daemon_threads = True

    def __init__(self, host: str, port: int, app: ServeApp):
        super().__init__((host, port), _Handler)
        self.serve_app = app

    @property
    def bound_port(self) -> int:
        return self.server_address[1]


def run_server(
    host: str,
    port: int,
    app: ServeApp,
    out=None,
    ready: Optional[threading.Event] = None,
    install_signals: bool = True,
) -> int:
    """Serve until SIGTERM/SIGINT (or ``server.shutdown()``); returns 0.

    ``ready`` (for tests) fires once the socket is bound and the accept
    loop is about to start; ``install_signals=False`` skips handler
    installation for callers not on the main thread.
    """
    server = ReproHTTPServer(host, port, app)
    if install_signals:

        def _stop(signum, frame) -> None:
            # shutdown() must not run on the serve_forever thread; it
            # joins the accept loop, so hop to a helper thread
            threading.Thread(target=server.shutdown, daemon=True).start()

        signal.signal(signal.SIGTERM, _stop)
        signal.signal(signal.SIGINT, _stop)
    if out is not None:
        print(
            json.dumps({"serving": True, "host": host, "port": server.bound_port}),
            file=out,
            flush=True,
        )
    if ready is not None:
        ready.set()
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
    return 0

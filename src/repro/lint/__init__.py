"""Static analysis for adaptation specs (``repro lint``).

Four rule families over everything an :class:`AdaptationSpec` wires —
none of which executes a single simulated event:

* ``DSL1xx`` — semantic checks on the repair DSL (:mod:`.dsl_rules`);
* ``FP2xx``  — static footprint & oscillation analysis
  (:mod:`.footprint_rules`);
* ``DET3xx`` — determinism lint over the simulator-facing Python
  packages (:mod:`.determinism`);
* ``WIR4xx`` — probe/gauge/effector wiring audit (:mod:`.wiring`).

See ``docs/linting.md`` for the rule catalog and waiver syntax.
"""

from repro.lint.api import (
    LintReport,
    lint_all,
    lint_document,
    lint_repo_determinism,
    lint_runtime,
    lint_scenario,
)
from repro.lint.findings import (
    ERROR,
    WARNING,
    LintFinding,
    Waiver,
    apply_waivers,
    parse_waivers,
)

__all__ = [
    "ERROR",
    "WARNING",
    "LintFinding",
    "LintReport",
    "Waiver",
    "apply_waivers",
    "parse_waivers",
    "lint_all",
    "lint_document",
    "lint_repo_determinism",
    "lint_runtime",
    "lint_scenario",
]

"""The lint pass's currency: structured findings and in-source waivers.

A :class:`LintFinding` names the rule that fired, where (a source label
plus a 1-based line/column when the rule can anchor one), what went
wrong, and — because a finding you cannot act on is noise — a fix hint.

Waivers are declared *in the linted source itself* so they ride along
with the spec they excuse (the in-repo requirement: every finding on a
registered scenario is either fixed or visibly waived next to the code
that triggers it).  The syntax is a comment anywhere in the document::

    // lint: waive FP203 healthy/drained are binary; (0, 1) is unreachable
    # lint: waive DET301 wall-clock is fine in this reporting helper

The first token after ``waive`` is the rule id; the rest of the line is
the (required) justification.  A waiver suppresses every finding with
that rule id produced from the document that declares it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Tuple

__all__ = [
    "ERROR",
    "WARNING",
    "LintFinding",
    "Waiver",
    "parse_waivers",
    "apply_waivers",
]

#: severity levels: errors are always worth failing a build over;
#: warnings flag risk that a human may waive with a recorded reason.
ERROR = "error"
WARNING = "warning"

_WAIVER_RE = re.compile(
    r"(?://|#)\s*lint:\s*waive\s+(?P<rule>[A-Z]+[0-9]+)\s+(?P<reason>\S.*)"
)


@dataclass(frozen=True)
class LintFinding:
    """One rule violation, anchored to a source location.

    ``source`` labels where the finding came from — a scenario name, a
    file path, or a caller-supplied document label; ``line``/``column``
    are 1-based positions within that source (0 = no position).
    """

    rule: str
    severity: str
    source: str
    message: str
    hint: str = ""
    line: int = 0
    column: int = 0

    def location(self) -> str:
        if self.line:
            return f"{self.source}:{self.line}:{self.column}"
        return self.source

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "source": self.source,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "hint": self.hint,
        }

    def __str__(self) -> str:
        hint = f" [{self.hint}]" if self.hint else ""
        return f"{self.location()}: {self.severity} {self.rule}: {self.message}{hint}"


@dataclass(frozen=True)
class Waiver:
    """One in-source waiver: a rule id plus its recorded justification."""

    rule: str
    reason: str
    line: int = 0


def parse_waivers(source: str) -> List[Waiver]:
    """Extract ``lint: waive RULE reason`` comments from document text."""
    waivers: List[Waiver] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _WAIVER_RE.search(line)
        if match:
            waivers.append(
                Waiver(
                    rule=match.group("rule"),
                    reason=match.group("reason").strip(),
                    line=lineno,
                )
            )
    return waivers


def apply_waivers(
    findings: Iterable[LintFinding], waivers: Iterable[Waiver]
) -> Tuple[List[LintFinding], List[LintFinding]]:
    """Split findings into (kept, waived) under the given waivers."""
    waived_rules = {w.rule for w in waivers}
    kept: List[LintFinding] = []
    waived: List[LintFinding] = []
    for finding in findings:
        (waived if finding.rule in waived_rules else kept).append(finding)
    return kept, waived

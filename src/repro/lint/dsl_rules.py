"""Rule family 1: semantic checks over a parsed repair-DSL document.

Everything here is *static* — invariants and tactic bodies are parsed
and walked but never evaluated, so linting a spec can never mutate a
model or perturb an event schedule.

Rules (see docs/linting.md for the catalog):

* ``DSL100`` — the document (or an invariant expression) fails to parse;
* ``DSL101`` — a bare name resolves to nothing: not a parameter, local,
  binding, or declared model property (needs name context);
* ``DSL102`` — a stdlib function is called with the wrong arity;
* ``DSL103`` — a stdlib function is called on a literal of a type it
  can never accept;
* ``DSL104`` — a statement is unreachable after ``return``/``commit``/
  ``abort`` (or after an ``if`` whose branches all terminate);
* ``DSL105`` — a call names a function that is not a declared tactic,
  a stdlib function, or a known style operator (needs operator context);
* ``DSL106`` — a strategy has no ``commit repair`` and no ``return``:
  every execution falls through to ``RepairAborted(NoCommit)``;
* ``DSL107`` — a tactic can never report success: no ``return`` at all,
  or every ``return`` is literally ``false``;
* ``DSL108`` — the same tactic call appears twice in one if/else-if
  chain, so the later arm can never add anything;
* ``DSL109`` — a tactic is declared but never invoked by any strategy
  or tactic;
* ``DSL110`` — an invariant routes to a strategy the document does not
  declare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.constraints.ast import (
    Binary,
    Call,
    Literal,
    Name,
    Node,
    PropertyAccess,
    Quantifier,
    Select,
    SetLiteral,
    Unary,
)
from repro.constraints.parser import parse_expression
from repro.errors import ParseError
from repro.lint.findings import ERROR, WARNING, LintFinding
from repro.repair.dsl.ast import (
    AbortStmt,
    CommitStmt,
    ExprStmt,
    ForeachStmt,
    IfStmt,
    LetStmt,
    ReturnStmt,
    Stmt,
    StrategyDecl,
    TacticDecl,
)
from repro.repair.dsl.parser import RepairDocument, parse_repair_dsl

__all__ = ["DocumentContext", "lint_parsed_document", "parse_for_lint"]

#: stdlib function name -> expected argument count (a method-style
#: receiver counts as the first argument, mirroring the evaluator).
_STDLIB_ARITY: Dict[str, int] = {
    "size": 1,
    "isEmpty": 1,
    "sum": 1,
    "avg": 1,
    "max": 1,
    "min": 1,
    "abs": 1,
    "sqrt": 1,
    "contains": 2,
    "connected": 2,
    "attached": 2,
    "declaresType": 2,
    "hasProperty": 2,
    "union": 2,
    "intersection": 2,
}

#: stdlib functions whose (first) argument must be a collection
_COLLECTION_FNS = frozenset(
    ("size", "isEmpty", "sum", "avg", "max", "min", "contains", "union",
     "intersection")
)

#: stdlib functions whose argument must be a number
_NUMERIC_FNS = frozenset(("abs", "sqrt"))


@dataclass
class DocumentContext:
    """What the linter may assume known about the spec around a document.

    ``bindings``/``properties`` feed DSL101 (bare-name resolution) and
    ``operators`` feeds DSL105 (unknown calls); each check only runs
    when its context was actually provided, so document-only linting
    (no spec in hand) stays free of false positives.
    """

    source: str = "<dsl>"
    bindings: Optional[Set[str]] = None
    properties: Optional[Set[str]] = None
    operators: Optional[Set[str]] = None
    concurrency: str = "serial"
    binding_values: Dict[str, float] = field(default_factory=dict)

    def names_known(self) -> bool:
        return self.bindings is not None and self.properties is not None

    def known_names(self) -> Set[str]:
        names = {"self", "system"}
        if self.bindings:
            names |= self.bindings
        if self.properties:
            names |= self.properties
        return names


def parse_for_lint(
    source_text: str, ctx: DocumentContext
) -> Tuple[Optional[RepairDocument], List[LintFinding]]:
    """Parse a DSL document, turning parse failures into DSL100 findings."""
    try:
        return parse_repair_dsl(source_text), []
    except ParseError as exc:
        finding = LintFinding(
            rule="DSL100",
            severity=ERROR,
            source=ctx.source,
            message=f"repair DSL does not parse: {exc.bare_message}",
            hint="fix the syntax error; nothing else can be checked until it parses",
            line=exc.line,
            column=exc.column,
        )
        return None, [finding]


def lint_parsed_document(
    doc: RepairDocument, ctx: DocumentContext
) -> List[LintFinding]:
    """Run every family-1 rule over an already-parsed document."""
    findings: List[LintFinding] = []
    findings += _check_invariants(doc, ctx)
    findings += _check_expressions(doc, ctx)
    findings += _check_unreachable(doc, ctx)
    findings += _check_strategy_commit_paths(doc, ctx)
    findings += _check_tactic_truth_paths(doc, ctx)
    findings += _check_shadowed_calls(doc, ctx)
    findings += _check_unused_tactics(doc, ctx)
    return findings


# ---------------------------------------------------------------------------
# Walk helpers
# ---------------------------------------------------------------------------

def iter_statements(body: Sequence[Stmt]) -> Iterator[Stmt]:
    """Every statement in a body, recursively, in source order."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, IfStmt):
            yield from iter_statements(stmt.then_block)
            if stmt.else_block:
                yield from iter_statements(stmt.else_block)
        elif isinstance(stmt, ForeachStmt):
            yield from iter_statements(stmt.body)


def iter_expressions(body: Sequence[Stmt]) -> Iterator[Tuple[Node, Stmt]]:
    """Every expression in a body with its carrying statement."""
    for stmt in iter_statements(body):
        if isinstance(stmt, LetStmt):
            yield stmt.value, stmt
        elif isinstance(stmt, IfStmt):
            yield stmt.cond, stmt
        elif isinstance(stmt, ForeachStmt):
            yield stmt.domain, stmt
        elif isinstance(stmt, ReturnStmt) and stmt.value is not None:
            yield stmt.value, stmt
        elif isinstance(stmt, ExprStmt):
            yield stmt.expr, stmt


def iter_calls(node: Node) -> Iterator[Call]:
    """Every Call node in an expression tree."""
    for child in walk_expr(node):
        if isinstance(child, Call):
            yield child


def walk_expr(node: Node) -> Iterator[Node]:
    yield node
    if isinstance(node, PropertyAccess):
        yield from walk_expr(node.obj)
    elif isinstance(node, Call):
        if node.receiver is not None:
            yield from walk_expr(node.receiver)
        for arg in node.args:
            yield from walk_expr(arg)
    elif isinstance(node, Unary):
        yield from walk_expr(node.operand)
    elif isinstance(node, Binary):
        yield from walk_expr(node.left)
        yield from walk_expr(node.right)
    elif isinstance(node, (Quantifier, Select)):
        yield from walk_expr(node.domain)
        yield from walk_expr(node.body)
    elif isinstance(node, SetLiteral):
        for item in node.items:
            yield from walk_expr(item)


def _declared_bodies(
    doc: RepairDocument,
) -> Iterator[Tuple[str, str, Sequence[Stmt], List[str]]]:
    """(kind, name, body, param names) for every strategy and tactic."""
    for decl in doc.strategies.values():
        yield "strategy", decl.name, decl.body, [p.name for p in decl.params]
    for decl in doc.tactics.values():
        yield "tactic", decl.name, decl.body, [p.name for p in decl.params]


# ---------------------------------------------------------------------------
# DSL110 + invariant expression parsing (DSL100 for expressions)
# ---------------------------------------------------------------------------

def _check_invariants(doc: RepairDocument, ctx: DocumentContext) -> List[LintFinding]:
    findings: List[LintFinding] = []
    for decl in doc.invariants:
        if decl.strategy not in doc.strategies:
            declared = ", ".join(sorted(doc.strategies)) or "none"
            findings.append(
                LintFinding(
                    rule="DSL110",
                    severity=ERROR,
                    source=ctx.source,
                    message=(
                        f"invariant {decl.name!r} routes to undeclared "
                        f"strategy {decl.strategy!r} (declared: {declared})"
                    ),
                    hint="declare the strategy or fix the invariant's '-> name'",
                    line=decl.line,
                    column=decl.column,
                )
            )
        try:
            parse_expression(decl.expression)
        except ParseError as exc:
            findings.append(
                LintFinding(
                    rule="DSL100",
                    severity=ERROR,
                    source=ctx.source,
                    message=(
                        f"invariant {decl.name!r} expression does not parse: "
                        f"{exc.bare_message}"
                    ),
                    hint="the constraint checker would reject this at build time",
                    line=decl.line,
                    column=decl.column,
                )
            )
    return findings


# ---------------------------------------------------------------------------
# DSL101 / DSL102 / DSL103 / DSL105 — expression-level checks
# ---------------------------------------------------------------------------

def _expression_findings(
    expr: Node,
    env: Set[str],
    where: str,
    in_strategy: bool,
    doc: RepairDocument,
    ctx: DocumentContext,
    line: int,
    column: int,
) -> List[LintFinding]:
    findings: List[LintFinding] = []
    known = ctx.known_names() | env if ctx.names_known() else None
    tactics = set(doc.tactics)

    def visit(node: Node, bound: Set[str]) -> None:
        if isinstance(node, Name):
            if known is not None and node.ident not in known | bound:
                findings.append(
                    LintFinding(
                        rule="DSL101",
                        severity=ERROR,
                        source=ctx.source,
                        message=(
                            f"{where}: name {node.ident!r} is not a parameter, "
                            "local, binding, or declared model property"
                        ),
                        hint="check the spelling against the spec's bindings "
                        "and the style family's declared properties",
                        line=node.line or line,
                        column=node.column or column,
                    )
                )
            return
        if isinstance(node, PropertyAccess):
            visit(node.obj, bound)
            return
        if isinstance(node, Call):
            findings.extend(
                _call_findings(node, bound, where, in_strategy, tactics, ctx, line)
            )
            if node.receiver is not None:
                visit(node.receiver, bound)
            for arg in node.args:
                visit(arg, bound)
            return
        if isinstance(node, Unary):
            visit(node.operand, bound)
            return
        if isinstance(node, Binary):
            visit(node.left, bound)
            visit(node.right, bound)
            return
        if isinstance(node, (Quantifier, Select)):
            visit(node.domain, bound)
            visit(node.body, bound | {node.var})
            return
        if isinstance(node, SetLiteral):
            for item in node.items:
                visit(item, bound)

    visit(expr, set())
    return findings


def _call_findings(
    node: Call,
    bound: Set[str],
    where: str,
    in_strategy: bool,
    tactics: Set[str],
    ctx: DocumentContext,
    fallback_line: int,
) -> List[LintFinding]:
    findings: List[LintFinding] = []
    name = node.func
    argc = len(node.args) + (1 if node.receiver is not None else 0)
    line = node.line or fallback_line
    column = node.column

    if name in _STDLIB_ARITY:
        want = _STDLIB_ARITY[name]
        if argc != want:
            findings.append(
                LintFinding(
                    rule="DSL102",
                    severity=ERROR,
                    source=ctx.source,
                    message=(
                        f"{where}: {name}() takes {want} argument(s), got {argc}"
                        + (" (the receiver counts)" if node.receiver else "")
                    ),
                    hint="see the stdlib arity table in docs/linting.md",
                    line=line,
                    column=column,
                )
            )
        first = node.receiver if node.receiver is not None else (
            node.args[0] if node.args else None
        )
        if isinstance(first, Literal):
            bad_collection = name in _COLLECTION_FNS and not isinstance(
                first.value, (list, tuple)
            )
            bad_number = name in _NUMERIC_FNS and (
                isinstance(first.value, (bool, str)) or first.value is None
            )
            if bad_collection or bad_number:
                want_kind = "a collection" if bad_collection else "a number"
                findings.append(
                    LintFinding(
                        rule="DSL103",
                        severity=ERROR,
                        source=ctx.source,
                        message=(
                            f"{where}: {name}() expects {want_kind}, got the "
                            f"literal {first.value!r}"
                        ),
                        hint="this call raises EvaluationError on every run",
                        line=line,
                        column=column,
                    )
                )
        if name == "declaresType" and len(node.args) >= 1:
            type_arg = node.args[-1]
            if isinstance(type_arg, Literal) and not isinstance(type_arg.value, str):
                findings.append(
                    LintFinding(
                        rule="DSL103",
                        severity=ERROR,
                        source=ctx.source,
                        message=(
                            f"{where}: declaresType() expects a type-name "
                            f"string, got the literal {type_arg.value!r}"
                        ),
                        hint="quote the type name",
                        line=line,
                        column=column,
                    )
                )
        return findings

    if name in tactics:
        return findings
    if ctx.operators is not None and name not in ctx.operators:
        kind = "tactic" if in_strategy else "tactic or style operator"
        findings.append(
            LintFinding(
                rule="DSL105",
                severity=ERROR,
                source=ctx.source,
                message=(
                    f"{where}: call to {name!r}, which is no declared {kind}, "
                    "stdlib function, or registered operator"
                ),
                hint="declare the tactic or register the operator in the spec",
                line=line,
                column=column,
            )
        )
    return findings


def _check_expressions(doc: RepairDocument, ctx: DocumentContext) -> List[LintFinding]:
    findings: List[LintFinding] = []
    for kind, name, body, params in _declared_bodies(doc):
        where = f"{kind} {name!r}"
        env = set(params)
        # lets and foreach vars are script-scoped (flat), not block-scoped
        for stmt in iter_statements(body):
            if isinstance(stmt, LetStmt):
                env.add(stmt.name)
            elif isinstance(stmt, ForeachStmt):
                env.add(stmt.var)
        for expr, stmt in iter_expressions(body):
            findings += _expression_findings(
                expr, env, where, kind == "strategy", doc, ctx,
                stmt.line, stmt.column,
            )
    if ctx.names_known():
        for decl in doc.invariants:
            try:
                expr = parse_expression(decl.expression)
            except ParseError:
                continue  # already a DSL100 finding
            findings += _expression_findings(
                expr, set(), f"invariant {decl.name!r}", False, doc, ctx,
                decl.line, decl.column,
            )
    return findings


# ---------------------------------------------------------------------------
# DSL104 — unreachable statements
# ---------------------------------------------------------------------------

def _terminates(stmt: Stmt) -> bool:
    """True when control can never continue past this statement."""
    if isinstance(stmt, (ReturnStmt, CommitStmt, AbortStmt)):
        return True
    if isinstance(stmt, IfStmt):
        if stmt.else_block is None:
            return False
        return _block_terminates(stmt.then_block) and _block_terminates(
            stmt.else_block
        )
    return False


def _block_terminates(body: Sequence[Stmt]) -> bool:
    return any(_terminates(stmt) for stmt in body)


def _unreachable_in(body: Sequence[Stmt]) -> Iterator[Stmt]:
    terminated = False
    for stmt in body:
        if terminated:
            yield stmt
            continue
        if isinstance(stmt, IfStmt):
            yield from _unreachable_in(stmt.then_block)
            if stmt.else_block:
                yield from _unreachable_in(stmt.else_block)
        elif isinstance(stmt, ForeachStmt):
            yield from _unreachable_in(stmt.body)
        if _terminates(stmt):
            terminated = True


def _check_unreachable(doc: RepairDocument, ctx: DocumentContext) -> List[LintFinding]:
    findings: List[LintFinding] = []
    for kind, name, body, _params in _declared_bodies(doc):
        for stmt in _unreachable_in(body):
            findings.append(
                LintFinding(
                    rule="DSL104",
                    severity=WARNING,
                    source=ctx.source,
                    message=(
                        f"{kind} {name!r}: statement is unreachable (control "
                        "already left via return/commit/abort)"
                    ),
                    hint="delete the dead statement or restructure the branch",
                    line=stmt.line,
                    column=stmt.column,
                )
            )
    return findings


# ---------------------------------------------------------------------------
# DSL106 / DSL107 — commit and truth paths
# ---------------------------------------------------------------------------

def _check_strategy_commit_paths(
    doc: RepairDocument, ctx: DocumentContext
) -> List[LintFinding]:
    findings: List[LintFinding] = []
    for decl in doc.strategies.values():
        stmts = list(iter_statements(decl.body))
        has_commit = any(isinstance(s, CommitStmt) for s in stmts)
        has_return = any(isinstance(s, ReturnStmt) for s in stmts)
        if not has_commit and not has_return:
            findings.append(
                LintFinding(
                    rule="DSL106",
                    severity=ERROR,
                    source=ctx.source,
                    message=(
                        f"strategy {decl.name!r} has no 'commit repair' and no "
                        "'return': every run aborts with NoCommit"
                    ),
                    hint="add a 'commit repair;' on the success path",
                    line=decl.line,
                    column=decl.column,
                )
            )
    return findings


def _is_false_literal(node: Optional[Node]) -> bool:
    return node is None or (isinstance(node, Literal) and node.value is False)


def _check_tactic_truth_paths(
    doc: RepairDocument, ctx: DocumentContext
) -> List[LintFinding]:
    findings: List[LintFinding] = []
    for decl in doc.tactics.values():
        returns = [s for s in iter_statements(decl.body) if isinstance(s, ReturnStmt)]
        if returns and not all(_is_false_literal(r.value) for r in returns):
            continue
        detail = (
            "never executes a 'return'" if not returns
            else "only ever returns false"
        )
        findings.append(
            LintFinding(
                rule="DSL107",
                severity=ERROR,
                source=ctx.source,
                message=(
                    f"tactic {decl.name!r} {detail}, so it can never report "
                    "success (falling off the end returns false)"
                ),
                hint="return true (or a computed condition) after applying "
                "the change",
                line=decl.line,
                column=decl.column,
            )
        )
    return findings


# ---------------------------------------------------------------------------
# DSL108 — tactic calls shadowed by chain ordering
# ---------------------------------------------------------------------------

def _call_key(node: Node) -> Optional[str]:
    """A stable key for 'the same call with the same simple arguments'."""
    if not isinstance(node, Call) or node.receiver is not None:
        return None
    parts = [node.func]
    for arg in node.args:
        if isinstance(arg, Name):
            parts.append(arg.ident)
        elif isinstance(arg, Literal):
            parts.append(repr(arg.value))
        else:
            return None  # computed argument: treat as distinct
    return "(".join(parts)


def _chain_conditions(stmt: IfStmt) -> Iterator[Node]:
    """The conditions of an if/else-if chain, outermost first."""
    cursor: Optional[IfStmt] = stmt
    while cursor is not None:
        yield cursor.cond
        nxt = cursor.else_block
        if nxt and len(nxt) == 1 and isinstance(nxt[0], IfStmt):
            cursor = nxt[0]
        else:
            cursor = None


def _check_shadowed_calls(
    doc: RepairDocument, ctx: DocumentContext
) -> List[LintFinding]:
    findings: List[LintFinding] = []
    for kind, name, body, _params in _declared_bodies(doc):
        for stmt in body:
            if not isinstance(stmt, IfStmt):
                continue
            seen: Dict[str, Node] = {}
            for cond in _chain_conditions(stmt):
                key = _call_key(cond)
                if key is None:
                    continue
                if key in seen:
                    call = cond
                    findings.append(
                        LintFinding(
                            rule="DSL108",
                            severity=WARNING,
                            source=ctx.source,
                            message=(
                                f"{kind} {name!r}: tactic call "
                                f"{call.func}(...) repeats an earlier arm of "
                                "the same if/else-if chain and can never add "
                                "an outcome"
                            ),
                            hint="drop the duplicate arm or vary its arguments",
                            line=call.line or stmt.line,
                            column=call.column,
                        )
                    )
                else:
                    seen[key] = cond
    return findings


# ---------------------------------------------------------------------------
# DSL109 — declared-but-never-called tactics
# ---------------------------------------------------------------------------

def _check_unused_tactics(
    doc: RepairDocument, ctx: DocumentContext
) -> List[LintFinding]:
    called: Set[str] = set()
    for _kind, _name, body, _params in _declared_bodies(doc):
        for expr, _stmt in iter_expressions(body):
            for call in iter_calls(expr):
                called.add(call.func)
    findings: List[LintFinding] = []
    for decl in doc.tactics.values():
        if decl.name not in called:
            findings.append(
                LintFinding(
                    rule="DSL109",
                    severity=WARNING,
                    source=ctx.source,
                    message=(
                        f"tactic {decl.name!r} is declared but no strategy "
                        "or tactic ever calls it"
                    ),
                    hint="wire it into a strategy or delete it",
                    line=decl.line,
                    column=decl.column,
                )
            )
    return findings

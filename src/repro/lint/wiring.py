"""Rule family 4: the wiring audit.

A spec can parse, type-check, and still monitor nothing: a gauge
subscribed to a subject no probe publishes sits silent forever, and the
invariant it feeds simply never fires.  These failures are invisible at
runtime — nothing crashes, numbers just stay flat — so the linter checks
the *built* wiring of a runtime before any event executes:

* ``WIR401`` — a gauge's probe-bus subscription matches no deployed
  probe's subject (the gauge will never consume an observation);
* ``WIR402`` — a probe's subject matches no probe-bus subscription
  (every report it publishes is dropped on the floor);
* ``WIR403`` — a style operator emits a runtime intent whose ``op`` the
  spec's intent executor does not declare (the repair commits on the
  model, then translation fails);
* ``WIR404`` — a ``WakeThreshold`` names a gauge kind no gauge in the
  spec reports (the threshold can never trip, so in columnar mode the
  checker never wakes for it).

The audit runs against a :class:`WiringView` — a plain-data snapshot of
the facts the rules need — so tests can also construct views directly
from fixtures without building a runtime.
"""

from __future__ import annotations

import ast as python_ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.bus.filters import subject_matches
from repro.lint.findings import ERROR, WARNING, LintFinding

__all__ = ["WiringView", "lint_wiring"]


@dataclass
class WiringView:
    """The wiring facts the audit runs over, decoupled from the runtime."""

    source: str = "<wiring>"
    #: subjects the deployed probes publish (probe name == subject)
    probe_subjects: List[str] = field(default_factory=list)
    #: every probe-bus subscription pattern (gauges, consumers, ...)
    subscription_patterns: List[str] = field(default_factory=list)
    #: (gauge name, subscribed pattern) for each gauge
    gauges: List[Tuple[str, str]] = field(default_factory=list)
    #: kinds the spec's gauges report under
    gauge_kinds: Set[str] = field(default_factory=set)
    #: gauge kinds named by the spec's wake thresholds
    wake_threshold_kinds: List[str] = field(default_factory=list)
    #: ops the intent executor declares; None = executor doesn't say
    declared_ops: Optional[Set[str]] = None
    #: intent op -> name of the style operator that emits it
    emitted_ops: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_runtime(cls, runtime, source: str = "<wiring>") -> "WiringView":
        """Snapshot a built (not necessarily started) AdaptationRuntime."""
        view = cls(source=source)
        view.probe_subjects = [probe.name for probe in runtime.probes]
        view.subscription_patterns = [
            sub.pattern for sub in runtime.probe_bus.subscriptions
        ]
        for gauge in runtime.gauges:
            if gauge._sub is not None:
                view.gauges.append((gauge.name, gauge._sub.pattern))
            view.gauge_kinds.add(gauge.kind)
        view.wake_threshold_kinds = sorted(runtime.spec.wake_thresholds)
        translator = runtime.translator
        while hasattr(translator, "inner"):  # unwrap fault-plane decorators
            translator = translator.inner
        declared = getattr(translator, "INTENT_OPS", None)
        view.declared_ops = set(declared) if declared is not None else None
        for op_name, operator in runtime.manager.operators.items():
            for intent_op in _intent_ops_of(operator):
                view.emitted_ops.setdefault(intent_op, op_name)
        return view


def _intent_ops_of(operator) -> List[str]:
    """String-literal ops an operator callable passes to ``ctx.intend``.

    Static extraction from the callable's own source; operators whose
    source is unavailable (builtins, C extensions) contribute nothing —
    the audit under-reports rather than guesses.
    """
    try:
        source_text = textwrap.dedent(inspect.getsource(operator))
    except (OSError, TypeError):
        return []
    try:
        tree = python_ast.parse(source_text)
    except SyntaxError:
        return []
    ops: List[str] = []
    for node in python_ast.walk(tree):
        if (
            isinstance(node, python_ast.Call)
            and isinstance(node.func, python_ast.Attribute)
            and node.func.attr == "intend"
            and node.args
            and isinstance(node.args[0], python_ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            ops.append(node.args[0].value)
    return ops


def lint_wiring(view: WiringView) -> List[LintFinding]:
    findings: List[LintFinding] = []
    findings += _check_gauge_feeds(view)
    findings += _check_probe_audiences(view)
    findings += _check_intent_ops(view)
    findings += _check_wake_thresholds(view)
    return findings


def _check_gauge_feeds(view: WiringView) -> List[LintFinding]:
    findings: List[LintFinding] = []
    for gauge_name, pattern in view.gauges:
        if any(subject_matches(pattern, subject) for subject in view.probe_subjects):
            continue
        findings.append(
            LintFinding(
                rule="WIR401",
                severity=ERROR,
                source=view.source,
                message=(
                    f"gauge {gauge_name!r} subscribes to {pattern!r} but no "
                    "deployed probe publishes a matching subject: the gauge "
                    "never consumes an observation"
                ),
                hint="add the probe to the spec's instruments, or fix the "
                "gauge's target/kind so the subject lines up",
            )
        )
    return findings


def _check_probe_audiences(view: WiringView) -> List[LintFinding]:
    findings: List[LintFinding] = []
    for subject in view.probe_subjects:
        if any(
            subject_matches(pattern, subject)
            for pattern in view.subscription_patterns
        ):
            continue
        findings.append(
            LintFinding(
                rule="WIR402",
                severity=WARNING,
                source=view.source,
                message=(
                    f"probe {subject!r} has no subscriber on the probe bus: "
                    "every report it publishes is dropped"
                ),
                hint="remove the instrument or add the gauge that should "
                "consume it",
            )
        )
    return findings


def _check_intent_ops(view: WiringView) -> List[LintFinding]:
    if view.declared_ops is None:
        return []  # executor declares nothing; nothing to audit against
    findings: List[LintFinding] = []
    for intent_op, operator_name in sorted(view.emitted_ops.items()):
        if intent_op in view.declared_ops:
            continue
        declared = ", ".join(sorted(view.declared_ops)) or "none"
        findings.append(
            LintFinding(
                rule="WIR403",
                severity=ERROR,
                source=view.source,
                message=(
                    f"operator {operator_name!r} emits intent {intent_op!r} "
                    "but the intent executor does not declare it "
                    f"(declared: {declared}): the repair commits on the "
                    "model and then fails in translation"
                ),
                hint="handle the op in the executor (and add it to the "
                "executor's INTENT_OPS)",
            )
        )
    return findings


def _check_wake_thresholds(view: WiringView) -> List[LintFinding]:
    findings: List[LintFinding] = []
    for kind in view.wake_threshold_kinds:
        if kind in view.gauge_kinds:
            continue
        kinds = ", ".join(sorted(view.gauge_kinds)) or "none"
        findings.append(
            LintFinding(
                rule="WIR404",
                severity=ERROR,
                source=view.source,
                message=(
                    f"wake threshold names gauge kind {kind!r} but the spec "
                    f"deploys no gauge of that kind (deployed: {kinds}): "
                    "the threshold can never trip"
                ),
                hint="fix the wake_thresholds key or deploy the gauge",
            )
        )
    return findings

"""Rule family 3: determinism lint over the simulator-facing packages.

The whole repro rests on runs being replayable: the serial-fingerprint
suite hashes run results bit-for-bit, and the fault plane's scenarios
only make sense if the baseline they perturb is deterministic.  One
stray ``time.time()`` or unseeded ``default_rng()`` in the simulation
path quietly breaks that contract, usually long after the commit that
introduced it.

This pass walks the Python AST of every module under the packages that
execute inside (or drive) simulated time and flags:

* ``DET301`` — a call into a wall-clock or ambient-randomness API:
  ``random.*``, ``time.time`` / ``time.time_ns`` / ``time.monotonic``
  / ``time.perf_counter``, ``datetime.now`` / ``datetime.utcnow`` (and
  their ``datetime.datetime`` spellings);
* ``DET302`` — RNG construction that takes its seed from the
  environment: ``numpy.random.default_rng()`` with no arguments,
  ``numpy.random.RandomState()`` with no arguments, or a call to the
  global ``numpy.random.seed``.

Only *call sites* are flagged — a ``np.random.Generator`` type
annotation never fires.  Two files are sanctioned seams and exempt:
``util/rng.py``, where seeds enter the system, and
``realtime/clock.py``, where the wall-clock execution plane reads the
OS clock (everything else in ``repro.realtime`` / ``repro.serve`` must
take time from a ``Clock`` handed in at construction).  Anything else
that genuinely needs wall-clock time carries a
``# lint: waive DET301 <reason>`` comment on a nearby line, which
suppresses the rule file-wide.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.lint.findings import ERROR, LintFinding, apply_waivers, parse_waivers

__all__ = ["DETERMINISM_PACKAGES", "lint_python_source", "lint_determinism_tree"]

#: packages whose code runs inside (or schedules) simulated time — plus
#: the wall-clock plane, which must route every time read through the
#: realtime/clock.py seam
DETERMINISM_PACKAGES = (
    "sim",
    "runtime",
    "faults",
    "app",
    "experiment",
    "realtime",
    "serve",
)

#: per-file sanctioned seams: ambient time/randomness may enter here only
_SEAM_FILES = frozenset({"rng.py", "clock.py"})

#: dotted call targets that read ambient time or randomness
_FORBIDDEN_CALLS = {
    "time.time": "wall-clock time",
    "time.time_ns": "wall-clock time",
    "time.monotonic": "wall-clock time",
    "time.perf_counter": "wall-clock time",
    "datetime.now": "wall-clock time",
    "datetime.utcnow": "wall-clock time",
    "datetime.datetime.now": "wall-clock time",
    "datetime.datetime.utcnow": "wall-clock time",
}

#: zero-arg constructions that seed themselves from the OS
_UNSEEDED_CTORS = ("default_rng", "RandomState")


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an attribute chain rooted at a bare name."""
    parts: List[str] = []
    cursor = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if not isinstance(cursor, ast.Name):
        return None
    parts.append(cursor.id)
    return ".".join(reversed(parts))


def _call_findings(call: ast.Call, source_label: str) -> Iterator[LintFinding]:
    target = _dotted_name(call.func)
    if target is None:
        return
    head, _, tail = target.partition(".")
    if target in _FORBIDDEN_CALLS:
        yield LintFinding(
            rule="DET301",
            severity=ERROR,
            source=source_label,
            message=(
                f"call to {target}() reads {_FORBIDDEN_CALLS[target]}: "
                "simulation code must take time from the event kernel"
            ),
            hint="use the simulator clock (sim.now) or thread a timestamp in",
            line=call.lineno,
            column=call.col_offset + 1,
        )
    elif head == "random" and tail:
        yield LintFinding(
            rule="DET301",
            severity=ERROR,
            source=source_label,
            message=(
                f"call to {target}() uses the process-global random state: "
                "runs stop being replayable"
            ),
            hint="draw from a Generator owned by util/rng.py instead",
            line=call.lineno,
            column=call.col_offset + 1,
        )
    elif target.endswith(".seed") and "random" in target.split("."):
        yield LintFinding(
            rule="DET302",
            severity=ERROR,
            source=source_label,
            message=(
                f"call to {target}() reseeds a global RNG underneath "
                "every other consumer"
            ),
            hint="construct a dedicated Generator via util/rng.py",
            line=call.lineno,
            column=call.col_offset + 1,
        )
    elif target.split(".")[-1] in _UNSEEDED_CTORS and not call.args:
        has_seed_kwarg = any(kw.arg == "seed" for kw in call.keywords)
        if not has_seed_kwarg:
            yield LintFinding(
                rule="DET302",
                severity=ERROR,
                source=source_label,
                message=(
                    f"{target}() without a seed draws entropy from the OS: "
                    "two runs of the same config diverge"
                ),
                hint="pass an explicit seed (route it through util/rng.py)",
                line=call.lineno,
                column=call.col_offset + 1,
            )


def lint_python_source(source_text: str, source_label: str) -> List[LintFinding]:
    """DET findings for one Python module's source text (waivers applied)."""
    try:
        tree = ast.parse(source_text)
    except SyntaxError:
        return []  # not this linter's department; the test suite will object
    findings: List[LintFinding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            findings.extend(_call_findings(node, source_label))
    kept, _waived = apply_waivers(findings, parse_waivers(source_text))
    return kept


def lint_determinism_tree(
    root: Path, packages: Sequence[str] = DETERMINISM_PACKAGES
) -> Tuple[List[LintFinding], int]:
    """Lint every module under ``root/<package>``; returns (findings, files)."""
    findings: List[LintFinding] = []
    scanned = 0
    for package in packages:
        base = root / package
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            if path.name in _SEAM_FILES:
                continue  # the sanctioned seed / wall-clock seams
            scanned += 1
            label = str(path.relative_to(root.parent))
            findings += lint_python_source(path.read_text(encoding="utf-8"), label)
    return findings, scanned

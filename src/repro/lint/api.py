"""Lint entry points: documents, built scenarios, and the whole tree.

Three granularities, all returning plain data:

* :func:`lint_document` — one repair-DSL source, with as much or as
  little spec context as the caller has (fixtures pass none; scenarios
  pass bindings, model properties, and operator tables);
* :func:`lint_scenario` — build a registered scenario's control plane
  (without running a single event) and lint everything it wires: the
  DSL through family 1 and 2, the probe/gauge/effector wiring through
  family 4;
* :func:`lint_repo_determinism` — family 3 over the simulator-facing
  packages of the installed ``repro`` tree.

Building a runtime only *constructs* objects — the simulator never
starts, so linting can never perturb a run.  The serial-fingerprint
suite pins that claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from numbers import Real
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set

import repro
from repro.lint.determinism import lint_determinism_tree
from repro.lint.dsl_rules import (
    DocumentContext,
    lint_parsed_document,
    parse_for_lint,
)
from repro.lint.findings import (
    ERROR,
    LintFinding,
    Waiver,
    apply_waivers,
    parse_waivers,
)
from repro.lint.footprint_rules import lint_footprints
from repro.lint.wiring import WiringView, lint_wiring

__all__ = [
    "LintReport",
    "lint_document",
    "lint_runtime",
    "lint_scenario",
    "lint_repo_determinism",
    "lint_all",
]


@dataclass
class LintReport:
    """The outcome of one lint run over one source."""

    source: str
    findings: List[LintFinding] = field(default_factory=list)
    waived: List[LintFinding] = field(default_factory=list)
    waivers: List[Waiver] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def errors(self) -> List[LintFinding]:
        return [f for f in self.findings if f.severity == ERROR]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "ok": self.ok,
            "findings": [f.as_dict() for f in self.findings],
            "waived": [f.as_dict() for f in self.waived],
            "waivers": [
                {"rule": w.rule, "reason": w.reason, "line": w.line}
                for w in self.waivers
            ],
        }


def lint_document(
    source_text: str,
    *,
    source: str = "<dsl>",
    bindings: Optional[Set[str]] = None,
    properties: Optional[Set[str]] = None,
    operators: Optional[Set[str]] = None,
    concurrency: str = "serial",
    binding_values: Optional[Mapping[str, float]] = None,
) -> LintReport:
    """Lint one repair-DSL document (families 1 and 2)."""
    ctx = DocumentContext(
        source=source,
        bindings=set(bindings) if bindings is not None else None,
        properties=set(properties) if properties is not None else None,
        operators=set(operators) if operators is not None else None,
        concurrency=concurrency,
        binding_values=dict(binding_values or {}),
    )
    doc, findings = parse_for_lint(source_text, ctx)
    if doc is not None:
        findings = findings + lint_parsed_document(doc, ctx)
        findings = findings + lint_footprints(doc, ctx)
    waivers = parse_waivers(source_text)
    kept, waived = apply_waivers(findings, waivers)
    return LintReport(source=source, findings=kept, waived=waived, waivers=waivers)


def _model_property_names(model) -> Set[str]:
    """Every property name any element of the model declares.

    Bare names in invariant expressions resolve against the invariant's
    scope element, so the union over all elements is the right "could
    this name ever resolve" set for DSL101.
    """
    names: Set[str] = set()
    for component in model.components:
        names.update(component.property_names())
        for port in component.ports:
            names.update(port.property_names())
    for connector in model.connectors:
        names.update(connector.property_names())
        for role in connector.roles:
            names.update(role.property_names())
    return names


def _numeric_bindings(bindings: Mapping[str, Any]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for name, value in bindings.items():
        if isinstance(value, Real) and not isinstance(value, bool):
            out[name] = float(value)
    return out


def lint_runtime(runtime, source: str) -> LintReport:
    """Lint a built :class:`AdaptationRuntime`: its DSL and its wiring."""
    spec = runtime.spec
    report = lint_document(
        spec.dsl_source,
        source=source,
        bindings=set(spec.bindings),
        properties=_model_property_names(runtime.model),
        operators=set(runtime.manager.operators),
        concurrency=spec.concurrency,
        binding_values=_numeric_bindings(spec.bindings),
    )
    wiring_findings = lint_wiring(WiringView.from_runtime(runtime, source=source))
    kept, waived = apply_waivers(wiring_findings, report.waivers)
    report.findings.extend(kept)
    report.waived.extend(waived)
    return report


def lint_scenario(name: str, **config_kwargs: Any) -> LintReport:
    """Build scenario ``name``'s control plane (no events run) and lint it."""
    # imported lazily: repro.api pulls the whole experiment layer in
    from repro.api import make_config
    from repro.experiment.scenarios import scenario_builder

    config = make_config(name, adaptation=True, fast=True, **config_kwargs)
    runtime = scenario_builder(name)(config).build()
    if runtime is None:
        return LintReport(
            source=name,
            findings=[
                LintFinding(
                    rule="WIR400",
                    severity=ERROR,
                    source=name,
                    message="scenario built no control plane to lint",
                    hint="lint runs against adaptation=True builds",
                )
            ],
        )
    return lint_runtime(runtime, source=name)


def lint_repo_determinism(
    root: Optional[Path] = None,
) -> LintReport:
    """Family 3 over the installed ``repro`` tree's simulation packages."""
    base = root if root is not None else Path(repro.__file__).parent
    findings, scanned = lint_determinism_tree(base)
    report = LintReport(source=f"determinism[{scanned} files]")
    report.findings = findings
    return report


def lint_all(
    scenarios: Optional[Sequence[str]] = None,
    *,
    determinism: bool = True,
) -> List[LintReport]:
    """Lint the named scenarios (default: all registered) and the tree."""
    from repro.experiment.scenarios import scenario_names

    names = list(scenarios) if scenarios else scenario_names()
    reports = [lint_scenario(name) for name in names]
    if determinism:
        reports.append(lint_repo_determinism())
    return reports

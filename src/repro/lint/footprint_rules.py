"""Rule family 2: static footprint and oscillation analysis.

PR 4's repair engine proves *runtime* footprints disjoint before letting
two repairs commit concurrently (``repro.repair.footprint``).  This
module asks the same questions of the *source text*, before anything
runs:

* ``FP201`` — in a disjoint-mode spec, a tactic writes through a
  receiver the analysis cannot root at one of its parameters.  At
  runtime that write lands outside the repair's declared scope, the
  transaction's touched-set goes :data:`Footprint.UNIVERSAL`, and the
  engine silently degrades to serial scheduling — legal, but it defeats
  the point of disjoint mode.
* ``FP202`` — in a disjoint-mode spec, tactics reachable from
  *different* strategies write the same parameter *type*.  Two
  violations of different invariants can then race on one element class;
  the runtime overlap check will serialize them, but the spec author
  probably believed they were independent.
* ``FP203`` — two tactics guard the same property from opposite sides
  and the thresholds overlap: one acts while ``prop > X``, the other
  while ``prop < Y``, and ``Y > X``.  Any observation landing in
  ``(X, Y)`` satisfies both action regions, so the pair can ping-pong
  grow/shrink repairs forever.  Thresholds are resolved through the
  spec's bindings, so tightening a binding can introduce (or remove)
  this finding without touching the DSL.

All three rules derive tactic write sets from the AST alone: a write is
any non-stdlib, non-tactic call (a style-operator invocation), and its
root is found by chasing receivers through ``let``/``foreach`` chains —
the static analogue of what ``ModelTransaction.touched()`` observes at
commit time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.constraints.ast import (
    Binary,
    Call,
    Literal,
    Name,
    Node,
    PropertyAccess,
    Quantifier,
    Select,
    Unary,
)
from repro.lint.dsl_rules import (
    _STDLIB_ARITY,
    DocumentContext,
    iter_calls,
    iter_expressions,
    iter_statements,
)
from repro.lint.findings import WARNING, LintFinding
from repro.repair.dsl.ast import (
    ForeachStmt,
    IfStmt,
    LetStmt,
    ReturnStmt,
    Stmt,
    TacticDecl,
)
from repro.repair.dsl.parser import RepairDocument

__all__ = ["lint_footprints"]

#: sentinel root meaning "cannot be bounded: treat as writes-anything"
_UNIVERSAL = "*"


@dataclass(frozen=True)
class _Write:
    """One static write: the operator call and where its receiver roots."""

    op: str
    root: str  # a parameter name, or _UNIVERSAL
    root_type: Optional[str]
    line: int
    column: int


def lint_footprints(doc: RepairDocument, ctx: DocumentContext) -> List[LintFinding]:
    writes = {name: _tactic_writes(decl, doc) for name, decl in doc.tactics.items()}
    findings: List[LintFinding] = []
    if ctx.concurrency == "disjoint":
        findings += _check_universal_writes(doc, ctx, writes)
        findings += _check_overlapping_types(doc, ctx, writes)
    findings += _check_guard_overlap(doc, ctx, writes)
    return findings


# ---------------------------------------------------------------------------
# Write extraction
# ---------------------------------------------------------------------------

def _expr_root(node: Node, env: Dict[str, str]) -> str:
    """The name a receiver chain ultimately roots at (or _UNIVERSAL)."""
    if isinstance(node, Name):
        return env.get(node.ident, node.ident)
    if isinstance(node, PropertyAccess):
        return _expr_root(node.obj, env)
    if isinstance(node, Call):
        if node.receiver is not None:
            return _expr_root(node.receiver, env)
        return _UNIVERSAL
    if isinstance(node, (Quantifier, Select)):
        return _expr_root(node.domain, env)
    if isinstance(node, Unary):
        return _expr_root(node.operand, env)
    if isinstance(node, Binary):
        return _UNIVERSAL
    return _UNIVERSAL


def _tactic_writes(decl: TacticDecl, doc: RepairDocument) -> List[_Write]:
    """Every style-operator call a tactic makes, with resolved roots."""
    param_types = {p.name: p.type_name for p in decl.params}
    env: Dict[str, str] = {p.name: p.name for p in decl.params}
    # lets/foreach vars chase back to whatever their source expression
    # roots at (script scope is flat, so a single in-order pass works)
    for stmt in iter_statements(decl.body):
        if isinstance(stmt, LetStmt):
            env[stmt.name] = _expr_root(stmt.value, env)
        elif isinstance(stmt, ForeachStmt):
            env[stmt.var] = _expr_root(stmt.domain, env)
    writes: List[_Write] = []
    for expr, stmt in iter_expressions(decl.body):
        for call in iter_calls(expr):
            if call.func in _STDLIB_ARITY or call.func in doc.tactics:
                continue
            if call.receiver is None:
                root = _UNIVERSAL
            else:
                root = _expr_root(call.receiver, env)
                if root not in param_types:
                    root = _UNIVERSAL
            writes.append(
                _Write(
                    op=call.func,
                    root=root,
                    root_type=param_types.get(root),
                    line=call.line or stmt.line,
                    column=call.column,
                )
            )
    return writes


def _tactics_by_strategy(doc: RepairDocument) -> Dict[str, Set[str]]:
    """strategy name -> every tactic reachable from it (transitively)."""
    direct: Dict[str, Set[str]] = {}
    for name, tactic in doc.tactics.items():
        calls: Set[str] = set()
        for expr, _stmt in iter_expressions(tactic.body):
            calls |= {c.func for c in iter_calls(expr) if c.func in doc.tactics}
        direct[name] = calls
    reach: Dict[str, Set[str]] = {}
    for sname, strategy in doc.strategies.items():
        frontier: Set[str] = set()
        for expr, _stmt in iter_expressions(strategy.body):
            frontier |= {c.func for c in iter_calls(expr) if c.func in doc.tactics}
        seen: Set[str] = set()
        while frontier:
            tactic_name = frontier.pop()
            if tactic_name in seen:
                continue
            seen.add(tactic_name)
            frontier |= direct.get(tactic_name, set())
        reach[sname] = seen
    return reach


# ---------------------------------------------------------------------------
# FP201 / FP202
# ---------------------------------------------------------------------------

def _check_universal_writes(
    doc: RepairDocument,
    ctx: DocumentContext,
    writes: Dict[str, List[_Write]],
) -> List[LintFinding]:
    findings: List[LintFinding] = []
    for tactic_name, tactic_writes in writes.items():
        for write in tactic_writes:
            if write.root is not _UNIVERSAL:
                continue
            findings.append(
                LintFinding(
                    rule="FP201",
                    severity=WARNING,
                    source=ctx.source,
                    message=(
                        f"tactic {tactic_name!r}: write {write.op}(...) is "
                        "not rooted at a tactic parameter, so its runtime "
                        "footprint is UNIVERSAL and disjoint-mode scheduling "
                        "degrades to serial whenever this tactic runs"
                    ),
                    hint="pass the written element in as a parameter, or "
                    "accept serial scheduling for this repair",
                    line=write.line,
                    column=write.column,
                )
            )
    return findings


def _check_overlapping_types(
    doc: RepairDocument,
    ctx: DocumentContext,
    writes: Dict[str, List[_Write]],
) -> List[LintFinding]:
    reach = _tactics_by_strategy(doc)
    findings: List[LintFinding] = []
    strategies = sorted(reach)
    for i, first in enumerate(strategies):
        for second in strategies[i + 1 :]:
            shared = _shared_write_types(reach[first], reach[second], writes)
            for type_name, (tname_a, tname_b) in sorted(shared.items()):
                decl = doc.tactics[tname_a]
                findings.append(
                    LintFinding(
                        rule="FP202",
                        severity=WARNING,
                        source=ctx.source,
                        message=(
                            f"strategies {first!r} and {second!r} both write "
                            f"{type_name} elements (via tactics {tname_a!r} "
                            f"and {tname_b!r}): their repairs statically "
                            "overlap under disjoint-mode scheduling"
                        ),
                        hint="confirm the two repairs always target distinct "
                        "instances, then waive; otherwise merge the strategies",
                        line=decl.line,
                        column=decl.column,
                    )
                )
    return findings


def _shared_write_types(
    tactics_a: Set[str],
    tactics_b: Set[str],
    writes: Dict[str, List[_Write]],
) -> Dict[str, Tuple[str, str]]:
    """type name -> (tactic in a, tactic in b) writing it from both sides."""

    def types_of(names: Set[str]) -> Dict[str, str]:
        out: Dict[str, str] = {}
        for name in sorted(names):
            for write in writes.get(name, ()):
                if write.root_type and write.root_type not in out:
                    out[write.root_type] = name
        return out

    only_a = types_of(tactics_a - tactics_b)
    only_b = types_of(tactics_b - tactics_a)
    return {
        type_name: (only_a[type_name], only_b[type_name])
        for type_name in only_a.keys() & only_b.keys()
    }


# ---------------------------------------------------------------------------
# FP203 — guard-threshold ping-pong
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _ActionBound:
    """One face of a tactic's action region: ``prop <dir> threshold``."""

    prop: str
    direction: str  # "above" (acts while prop > bound) or "below"
    bound: float
    bound_text: str
    line: int


def _resolve_threshold(
    node: Node, ctx: DocumentContext
) -> Optional[Tuple[float, str]]:
    if isinstance(node, Literal) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return float(node.value), repr(node.value)
    if isinstance(node, Name) and node.ident in ctx.binding_values:
        return ctx.binding_values[node.ident], node.ident
    return None


def _guard_prop(node: Node) -> Optional[str]:
    """The property a guard's left side observes, if it is simple."""
    if isinstance(node, PropertyAccess) and isinstance(node.obj, Name):
        return node.attr
    if isinstance(node, Name):
        return node.ident
    return None


#: negating ``if (prop OP bound) { return false; }`` gives the action
#: region's face: a ``<=`` guard means the tactic acts while *above*.
_NEGATED_DIRECTION = {"<=": "above", "<": "above", ">=": "below", ">": "below"}


def _action_bounds(decl: TacticDecl, ctx: DocumentContext) -> List[_ActionBound]:
    bounds: List[_ActionBound] = []
    for stmt in decl.body:
        if not _is_guard(stmt):
            break
        cond = stmt.cond  # type: ignore[union-attr]
        if not isinstance(cond, Binary) or cond.op not in _NEGATED_DIRECTION:
            continue
        prop = _guard_prop(cond.left)
        threshold = _resolve_threshold(cond.right, ctx)
        if prop is None or threshold is None:
            continue
        value, text = threshold
        bounds.append(
            _ActionBound(
                prop=prop,
                direction=_NEGATED_DIRECTION[cond.op],
                bound=value,
                bound_text=text,
                line=stmt.line,
            )
        )
    return bounds


def _is_guard(stmt: Stmt) -> bool:
    """``if (cond) { return false-or-bare; }`` with no else branch."""
    if not isinstance(stmt, IfStmt) or stmt.else_block is not None:
        return False
    if len(stmt.then_block) != 1:
        return False
    only = stmt.then_block[0]
    if not isinstance(only, ReturnStmt):
        return False
    return only.value is None or (
        isinstance(only.value, Literal) and only.value.value is False
    )


def _write_types(writes: Sequence[_Write]) -> Set[str]:
    out: Set[str] = set()
    for write in writes:
        out.add(write.root_type or _UNIVERSAL)
    return out


def _check_guard_overlap(
    doc: RepairDocument,
    ctx: DocumentContext,
    writes: Dict[str, List[_Write]],
) -> List[LintFinding]:
    findings: List[LintFinding] = []
    tactics = sorted(doc.tactics)
    bounds = {name: _action_bounds(doc.tactics[name], ctx) for name in tactics}
    for i, first in enumerate(tactics):
        for second in tactics[i + 1 :]:
            if not _may_contend(writes.get(first, ()), writes.get(second, ())):
                continue
            for above, below, a_name, b_name in _opposing_pairs(
                bounds[first], bounds[second], first, second
            ):
                if below.bound <= above.bound:
                    continue
                findings.append(
                    LintFinding(
                        rule="FP203",
                        severity=WARNING,
                        source=ctx.source,
                        message=(
                            f"tactics {a_name!r} and {b_name!r} ping-pong on "
                            f"{above.prop!r}: one acts while it exceeds "
                            f"{above.bound_text} ({above.bound:g}), the other "
                            f"while it is under {below.bound_text} "
                            f"({below.bound:g}), and the regions overlap on "
                            f"({above.bound:g}, {below.bound:g})"
                        ),
                        hint="separate the thresholds (hysteresis band) or "
                        "waive with the reason the overlap is unreachable",
                        line=above.line,
                        column=0,
                    )
                )
    return findings


def _may_contend(writes_a: Sequence[_Write], writes_b: Sequence[_Write]) -> bool:
    """True when the two tactics' write sets could touch common elements."""
    if not writes_a or not writes_b:
        return False
    types_a = _write_types(writes_a)
    types_b = _write_types(writes_b)
    if _UNIVERSAL in types_a or _UNIVERSAL in types_b:
        return True
    return not types_a.isdisjoint(types_b)


def _opposing_pairs(
    bounds_a: Sequence[_ActionBound],
    bounds_b: Sequence[_ActionBound],
    name_a: str,
    name_b: str,
) -> List[Tuple[_ActionBound, _ActionBound, str, str]]:
    pairs: List[Tuple[_ActionBound, _ActionBound, str, str]] = []
    for first in bounds_a:
        for second in bounds_b:
            if first.prop != second.prop or first.direction == second.direction:
                continue
            above, below = (
                (first, second) if first.direction == "above" else (second, first)
            )
            pairs.append((above, below, name_a, name_b))
    return pairs

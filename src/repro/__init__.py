"""repro — reproduction of *Software Architecture-Based Adaptation for Grid
Computing* (Cheng, Garlan, Schmerl, Steenkiste, Hu; HPDC 2002).

Public surface re-exported here; see README.md for a tour and DESIGN.md for
the system inventory.  Subpackages:

* ``repro.sim`` / ``repro.bus`` / ``repro.net`` / ``repro.app`` — the
  simulated runtime layer (testbed, network, application, Table 1 ops);
* ``repro.acme`` / ``repro.constraints`` / ``repro.styles`` — architectural
  models, the constraint language, and the client/server style;
* ``repro.monitoring`` — probes, gauges, gauge consumers;
* ``repro.repair`` — strategies, tactics, the Figure 5 DSL, the engine;
* ``repro.translation`` / ``repro.task`` — model/runtime bridge, profiles;
* ``repro.runtime`` — the reusable adaptation control plane
  (AdaptationRuntime built from a declarative AdaptationSpec around a
  ManagedApplication);
* ``repro.analysis`` — design-time queuing analysis;
* ``repro.experiment`` — the Figure 6/7 apparatus, the scenario
  registry (typed RunConfig + per-scenario params), and runners;
* ``repro.api`` / ``repro.cli`` — the scenario-neutral facade and the
  ``python -m repro`` command line on top of it.
"""

from repro.acme import ArchSystem, Component, Connector, Family, parse_acme
from repro.analysis import MMcQueue, required_servers
from repro.app import EnvironmentManager, GridApplication
from repro.bus import EventBus, Message
from repro.constraints import ConstraintChecker, Invariant, parse_expression
from repro.errors import ReproError
from repro.experiment import (
    RunConfig,
    RunResult,
    ScenarioConfig,
    ScenarioParams,
    register_scenario,
    run_scenario,
    scenario_names,
)
from repro.monitoring import GaugeManager, ModelUpdater
from repro.net import FlowNetwork, RemosService, Topology
from repro.repair import ArchitectureManager, ModelTransaction, parse_repair_dsl
from repro.runtime import (
    AdaptationRuntime,
    AdaptationSpec,
    GaugeBinding,
    ManagedApplication,
    ProbeBinding,
)
from repro.sim import Process, Simulator
from repro.styles import (
    FIGURE5_DSL,
    build_client_server_family,
    build_client_server_model,
    style_operators,
)
from repro.task import PerformanceProfile, TaskManager
from repro.translation import TranslationCosts, Translator
from repro import api

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # model layer
    "ArchSystem",
    "Component",
    "Connector",
    "Family",
    "parse_acme",
    "ConstraintChecker",
    "Invariant",
    "parse_expression",
    "ArchitectureManager",
    "ModelTransaction",
    "parse_repair_dsl",
    "FIGURE5_DSL",
    "build_client_server_family",
    "build_client_server_model",
    "style_operators",
    # runtime layer
    "Simulator",
    "Process",
    "EventBus",
    "Message",
    "Topology",
    "FlowNetwork",
    "RemosService",
    "GridApplication",
    "EnvironmentManager",
    # bridging layers
    "GaugeManager",
    "ModelUpdater",
    "Translator",
    "TranslationCosts",
    "PerformanceProfile",
    "TaskManager",
    # adaptation control plane
    "AdaptationRuntime",
    "AdaptationSpec",
    "GaugeBinding",
    "ManagedApplication",
    "ProbeBinding",
    # analysis + experiments
    "MMcQueue",
    "required_servers",
    "RunConfig",
    "RunResult",
    "ScenarioParams",
    "ScenarioConfig",
    "run_scenario",
    "register_scenario",
    "scenario_names",
    "api",
]

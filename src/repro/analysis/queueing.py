"""M/M/c queueing formulas (Erlang-C) for server-group analysis.

A server group with ``c`` replicated servers draining one FIFO queue is an
M/M/c station: Poisson arrivals at rate ``lam``, exponential service at
rate ``mu`` per server.  These closed forms drive the design-time sizing
and the repair-threshold sanity checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import AnalysisError

__all__ = ["erlang_c", "MMcQueue"]


def erlang_c(c: int, offered_load: float) -> float:
    """Probability an arrival waits (Erlang-C), offered load ``a = lam/mu``.

    Computed with a numerically stable recurrence on the Erlang-B blocking
    probability: ``B(0)=1; B(k) = a*B(k-1) / (k + a*B(k-1))`` and
    ``C = B(c) / (1 - rho*(1 - B(c)))``.
    """
    if c < 1:
        raise AnalysisError(f"need at least one server, got {c}")
    if offered_load < 0:
        raise AnalysisError(f"offered load must be >= 0, got {offered_load}")
    if offered_load == 0:
        return 0.0
    rho = offered_load / c
    if rho >= 1.0:
        return 1.0  # saturated: every arrival waits
    b = 1.0
    for k in range(1, c + 1):
        b = offered_load * b / (k + offered_load * b)
    return b / (1.0 - rho * (1.0 - b))


@dataclass(frozen=True)
class MMcQueue:
    """An M/M/c station: ``lam`` arrivals/s, ``mu`` services/s per server."""

    lam: float
    mu: float
    c: int

    def __post_init__(self) -> None:
        if self.lam < 0 or self.mu <= 0:
            raise AnalysisError("need lam >= 0 and mu > 0")
        if self.c < 1:
            raise AnalysisError("need at least one server")

    @property
    def offered_load(self) -> float:
        return self.lam / self.mu

    @property
    def utilization(self) -> float:
        return self.lam / (self.c * self.mu)

    @property
    def stable(self) -> bool:
        return self.utilization < 1.0

    def _require_stable(self) -> None:
        if not self.stable:
            raise AnalysisError(
                f"unstable system: rho = {self.utilization:.3f} >= 1 "
                f"(lam={self.lam}, mu={self.mu}, c={self.c})"
            )

    @property
    def wait_probability(self) -> float:
        """P(arrival must queue)."""
        self._require_stable()
        return erlang_c(self.c, self.offered_load)

    @property
    def mean_wait(self) -> float:
        """Wq: mean time in queue (s)."""
        self._require_stable()
        return self.wait_probability / (self.c * self.mu - self.lam)

    @property
    def mean_response(self) -> float:
        """W: queueing + service (s)."""
        return self.mean_wait + 1.0 / self.mu

    @property
    def mean_queue_length(self) -> float:
        """Lq: mean number waiting (the paper's measured 'server load')."""
        return self.lam * self.mean_wait

    def wait_exceeds(self, t: float) -> float:
        """P(Wq > t) = C * exp(-(c*mu - lam) * t)."""
        self._require_stable()
        if t < 0:
            raise AnalysisError(f"t must be >= 0, got {t}")
        return self.wait_probability * math.exp(-(self.c * self.mu - self.lam) * t)

    def queue_growth_rate(self) -> float:
        """Requests/s the queue grows when unstable (0 when stable)."""
        return max(0.0, self.lam - self.c * self.mu)

"""Design-time sizing: the analysis behind the paper's §5 inputs.

Inputs the paper states: ~6 requests/s aggregate, 0.5 KB requests, 20 KB
responses, a 2 s latency bound — and the outputs: "an initial starting
point of 3 replicated servers in one server group would be sufficient",
with a 10 Kbps bandwidth floor used as the repair trigger.

:func:`required_servers` finds the smallest replica count whose predicted
latency meets the bound with engineering headroom on the arrival rate
(capacity planning sizes for peaks, not means);
:func:`min_bandwidth_for` inverts the transfer-time term.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.queueing import MMcQueue
from repro.errors import AnalysisError

__all__ = [
    "predicted_latency",
    "required_servers",
    "min_bandwidth_for",
    "SizingResult",
]


def predicted_latency(
    arrival_rate: float,
    service_time: float,
    servers: int,
    response_bytes: float = 20e3,
    bandwidth_bps: float = 10e6,
) -> float:
    """Mean end-to-end latency: M/M/c wait + service + response transfer."""
    if service_time <= 0:
        raise AnalysisError("service_time must be positive")
    if bandwidth_bps <= 0:
        raise AnalysisError("bandwidth must be positive")
    q = MMcQueue(arrival_rate, 1.0 / service_time, servers)
    return q.mean_wait + service_time + (response_bytes * 8.0) / bandwidth_bps


@dataclass(frozen=True)
class SizingResult:
    """Outcome of a sizing calculation."""

    servers: int
    predicted_latency: float
    utilization: float
    headroom: float

    def __str__(self) -> str:
        return (
            f"{self.servers} servers "
            f"(predicted latency {self.predicted_latency:.2f} s, "
            f"utilization {self.utilization:.0%} at {self.headroom:.1f}x peak)"
        )


def required_servers(
    arrival_rate: float,
    service_time: float,
    max_latency: float,
    response_bytes: float = 20e3,
    bandwidth_bps: float = 10e6,
    headroom: float = 1.5,
    max_servers: int = 64,
) -> SizingResult:
    """Smallest replica count meeting ``max_latency`` at peak load.

    ``headroom`` scales the design arrival rate (sizing for 1.5x the mean
    arrival rate — capacity planning for bursts); the paper's inputs with
    the experiment's service model yield 3 servers for six 1/s clients.
    """
    if max_latency <= 0:
        raise AnalysisError("max_latency must be positive")
    if headroom < 1.0:
        raise AnalysisError("headroom must be >= 1")
    design_rate = arrival_rate * headroom
    for c in range(1, max_servers + 1):
        q = MMcQueue(design_rate, 1.0 / service_time, c)
        if not q.stable:
            continue
        latency = predicted_latency(
            design_rate, service_time, c, response_bytes, bandwidth_bps
        )
        if latency <= max_latency:
            return SizingResult(
                servers=c,
                predicted_latency=latency,
                utilization=q.utilization,
                headroom=headroom,
            )
    raise AnalysisError(
        f"no replica count up to {max_servers} meets {max_latency}s "
        f"(arrival {arrival_rate}/s, service {service_time}s)"
    )


def min_bandwidth_for(
    response_bytes: float,
    latency_budget: float,
    queue_and_service: float = 0.0,
) -> float:
    """Bandwidth needed to deliver a response within the remaining budget.

    ``queue_and_service`` is the part of the budget already consumed
    upstream.  The paper operated its repair trigger at 10 Kbps — far
    below what a 2 s budget implies for 20 KB responses (~112 Kbps); the
    X2 bench reports both and EXPERIMENTS.md discusses the gap.
    """
    remaining = latency_budget - queue_and_service
    if remaining <= 0:
        raise AnalysisError(
            f"no budget left for transfer ({latency_budget} - {queue_and_service})"
        )
    return response_bytes * 8.0 / remaining

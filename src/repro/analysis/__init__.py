"""Design-time performance analysis (substrate S15).

The paper derives its repairs from an architecture-level queuing analysis
[23]: "a queuing-theoretic analysis of performance can indicate possible
points of adaptation".  This package provides the M/M/c machinery plus the
sizing calculations behind §5's inputs ("we calculated that an initial
starting point of 3 replicated servers in one server group would be
sufficient to serve our six clients").
"""

from repro.analysis.queueing import MMcQueue, erlang_c
from repro.analysis.sizing import (
    SizingResult,
    required_servers,
    min_bandwidth_for,
    predicted_latency,
)

__all__ = [
    "MMcQueue",
    "erlang_c",
    "SizingResult",
    "required_servers",
    "min_bandwidth_for",
    "predicted_latency",
]

"""Exception hierarchy for the ``repro`` package.

All exceptions raised by this library derive from :class:`ReproError` so
applications can catch library failures with a single handler while still
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "ProcessKilled",
    "NetworkError",
    "NoRouteError",
    "ModelError",
    "DuplicateElementError",
    "UnknownElementError",
    "TypeViolationError",
    "AttachmentError",
    "PropertyError",
    "ParseError",
    "ConstraintError",
    "EvaluationError",
    "RepairError",
    "TacticFailure",
    "RepairAborted",
    "NoServerGroupFound",
    "TransactionError",
    "TranslationError",
    "MonitoringError",
    "GaugeError",
    "ProbeError",
    "EnvironmentError_",
    "WorkloadError",
    "AnalysisError",
]


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


# --------------------------------------------------------------------------
# Runtime layer
# --------------------------------------------------------------------------

class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly (e.g. time travel)."""


class ProcessKilled(ReproError):
    """Raised *inside* a simulated process when it is forcibly terminated."""


class NetworkError(ReproError):
    """Generic network-model failure."""


class NoRouteError(NetworkError):
    """No path exists between the requested endpoints."""


class EnvironmentError_(ReproError):
    """An environment-manager operation (Table 1) failed.

    Named with a trailing underscore to avoid shadowing the (deprecated)
    builtin ``EnvironmentError`` alias of ``OSError``.
    """


class WorkloadError(ReproError):
    """A workload schedule is malformed (overlapping/negative phases...)."""


# --------------------------------------------------------------------------
# Model layer
# --------------------------------------------------------------------------

class ModelError(ReproError):
    """Architectural model inconsistency (the paper's ``abort ModelError``)."""


class DuplicateElementError(ModelError):
    """An element with the same name already exists in its scope."""


class UnknownElementError(ModelError):
    """Lookup of a component/connector/port/role/property failed."""


class TypeViolationError(ModelError):
    """An element does not satisfy its declared architectural type."""


class AttachmentError(ModelError):
    """Invalid attachment (unknown port/role, double attachment...)."""


class PropertyError(ModelError):
    """Property access or typing failure."""


class ParseError(ReproError):
    """Lexing/parsing failure in the Acme, constraint, or repair languages.

    Carries the 1-based ``line`` and ``column`` of the offending token when
    available.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.bare_message = message
        self.line = line
        self.column = column


class ConstraintError(ReproError):
    """A constraint definition is invalid (not a boolean expression...)."""


class EvaluationError(ConstraintError):
    """Evaluating a constraint or repair expression failed at runtime."""


# --------------------------------------------------------------------------
# Repair machinery
# --------------------------------------------------------------------------

class RepairError(ReproError):
    """Base class for repair-engine failures."""


class TacticFailure(RepairError):
    """A tactic's script failed; the enclosing strategy may try another."""


class RepairAborted(RepairError):
    """A repair script executed ``abort <reason>`` (Figure 5 semantics)."""

    def __init__(self, reason: str = "ModelError"):
        super().__init__(f"repair aborted: {reason}")
        self.reason = reason


class NoServerGroupFound(RepairAborted):
    """Figure 5's ``abort NoServerGroupFound``."""

    def __init__(self) -> None:
        RepairError.__init__(self, "repair aborted: NoServerGroupFound")
        self.reason = "NoServerGroupFound"


class TransactionError(RepairError):
    """Transactional model editing misuse (nested commit, no txn...)."""


class TranslationError(ReproError):
    """The translator could not map a model operator to runtime operations."""


# --------------------------------------------------------------------------
# Monitoring
# --------------------------------------------------------------------------

class MonitoringError(ReproError):
    """Base class for probe/gauge infrastructure failures."""


class GaugeError(MonitoringError):
    """Gauge lifecycle/protocol violation."""


class ProbeError(MonitoringError):
    """Probe deployment or reporting failure."""


class AnalysisError(ReproError):
    """Queuing-analysis input is invalid (unstable system, rho >= 1...)."""

"""``python -m repro`` — drive any registered scenario from the shell.

Subcommands:

* ``list``    — registered scenarios and their typed parameter blocks;
* ``run``     — run one scenario (``--control``, ``--fast``, ``--set``);
* ``compare`` — adapted vs control under the identical seeded workload;
* ``report``  — full text report (summary, claims, series strips);
* ``lint``    — static analysis over adaptation specs (DSL semantics,
  static footprints, determinism, wiring) without running any events;
* ``serve``   — HTTP front door (``/health``, ``/stats``,
  ``/repair-history``, ``/run``, ``/ingest``) over the stdlib server;
* ``live-demo`` — adapt a real asyncio worker pool under burst load on
  the wall-clock plane, comparing adapted vs control p95.

``--json`` emits machine-readable output (strict JSON, no NaN); every
command exits 0 on success, 1 on a :class:`~repro.errors.ReproError`
(bad scenario name, bad parameter, inconsistent values), 2 on usage
errors.  ``--set field=value`` accepts neutral fields and typed
per-scenario params alike — values parse as JSON literals, falling back
to strings::

    python -m repro run pipeline --fast --set burst_rate=4.0 --json
    python -m repro compare master_worker --set straggler_prob=0.05
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro import api
from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def _parse_set(pairs: Sequence[str]) -> Dict[str, Any]:
    """``["a=1", "b=true", "c=first"]`` -> ``{"a": 1, "b": True, "c": "first"}``."""
    overrides: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ReproError(
                f"--set takes field=value, got {pair!r}"
            )
        key, raw = pair.split("=", 1)
        try:
            value = json.loads(raw)
        except json.JSONDecodeError:
            value = raw  # unquoted strings ("first", "worst", ...)
        overrides[key.strip()] = value
    return overrides


def _emit(data: Any, as_json: bool, out) -> None:
    if as_json:
        print(json.dumps(data, indent=2, allow_nan=False), file=out)
    else:
        print(data, file=out)


def _config_from_args(args, adaptation: Optional[bool] = None):
    return api.make_config(
        args.scenario,
        name=getattr(args, "name", None),
        adaptation=(not args.control) if adaptation is None else adaptation,
        seed=args.seed,
        horizon=args.horizon,
        fast=args.fast,
        overrides=_parse_set(args.set),
    )


# -- subcommands -------------------------------------------------------------

def _cmd_list(args, out) -> int:
    entries = api.list_scenarios()
    if args.json:
        _emit(entries, True, out)
        return 0
    for entry in entries:
        print(f"{entry['name']:<16} {entry['description']}", file=out)
        print(f"{'':<16} params: {entry['params_type']}", file=out)
        for field, default in sorted(entry["params"].items()):
            print(f"{'':<18}  {field} = {default!r}", file=out)
    return 0


def _cmd_run(args, out) -> int:
    config = _config_from_args(args)
    result = api.run(config, fresh=args.fresh)
    if args.json:
        print(result.to_json(indent=2, include_series=args.series), file=out)
    else:
        summary = result.summary()
        print(
            f"{config.scenario}/{config.name}: issued {summary['issued']}, "
            f"completed {summary['completed']}, dropped {summary['dropped']}, "
            f"repairs {summary['repairs']['committed']} committed / "
            f"{summary['repairs']['aborted']} aborted",
            file=out,
        )
        for key, value in sorted((summary.get("details") or {}).items()):
            print(f"  {key}: {value}", file=out)
    return 0


def _cmd_compare(args, out) -> int:
    pair = api.compare(
        args.scenario,
        seed=args.seed,
        horizon=args.horizon,
        fast=args.fast,
        fresh=args.fresh,
        overrides=_parse_set(args.set),
    )
    adapted, control = pair["adapted"], pair["control"]
    if args.json:
        _emit(
            {
                "scenario": pair["scenario"],
                "adapted": adapted.summary(),
                "control": control.summary(),
                "delta": pair["delta"],
            },
            True,
            out,
        )
        return 0
    print(f"scenario {pair['scenario']!r} (seed {args.seed})", file=out)
    rows = [
        ("issued", control.issued, adapted.issued),
        ("completed", control.completed, adapted.completed),
        ("dropped", control.dropped, adapted.dropped),
        ("repairs committed", len(control.history.committed),
         len(adapted.history.committed)),
        ("repairs aborted", len(control.history.aborted),
         len(adapted.history.aborted)),
    ]
    print(f"{'measure':<20} {'control':>12} {'adapted':>12}", file=out)
    for label, c, a in rows:
        print(f"{label:<20} {c:>12} {a:>12}", file=out)
    print(
        f"adapted completes {pair['delta']['completed']:+d} vs control",
        file=out,
    )
    return 0


def _cmd_report(args, out) -> int:
    config = _config_from_args(args)
    if args.json:
        result = api.run(config, fresh=args.fresh)
        print(result.to_json(indent=2, include_series=True), file=out)
        return 0
    print(api.report(config, fresh=args.fresh), file=out)
    return 0


def _cmd_lint(args, out) -> int:
    # imported lazily: the lint package pulls the experiment layer in
    from repro.experiment.scenarios import scenario_names
    from repro.lint import lint_all, lint_document

    if args.dsl:
        try:
            source_text = open(args.dsl, encoding="utf-8").read()
        except OSError as exc:
            print(f"error: cannot read {args.dsl}: {exc}", file=sys.stderr)
            return 2
        reports = [lint_document(source_text, source=args.dsl)]
    else:
        known = set(scenario_names())
        unknown = [name for name in args.scenarios if name not in known]
        if unknown:
            print(
                f"error: unknown scenario(s) {', '.join(unknown)} "
                f"(registered: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return 2
        reports = lint_all(
            args.scenarios or None, determinism=not args.no_determinism
        )

    if args.json:
        _emit([report.as_dict() for report in reports], True, out)
    else:
        for report in reports:
            status = "ok" if report.ok else f"{len(report.findings)} finding(s)"
            waived = (
                f" ({len(report.waived)} waived)" if report.waived else ""
            )
            print(f"{report.source}: {status}{waived}", file=out)
            for finding in report.findings:
                print(f"  {finding}", file=out)
    return 0 if all(report.ok for report in reports) else 1


def _cmd_serve(args, out) -> int:
    # imported lazily: the serve layer pulls realtime + http machinery in
    from repro.experiment.scenarios import scenario_builder
    from repro.serve.app import ServeApp
    from repro.serve.http import run_server

    runtime = None
    if args.scenario is not None:
        config = api.make_config(args.scenario, fast=True)
        runtime = scenario_builder(args.scenario)(config).build()
    return run_server(args.host, args.port, ServeApp(runtime=runtime), out=out)


def _cmd_live_demo(args, out) -> int:
    # imported lazily: the demo pulls the realtime plane + asyncio app in
    from repro.realtime.demo import main as demo_main

    argv: List[str] = []
    if args.check:
        argv.append("--check")
    if args.json:
        argv.append("--json")
    if args.fast:
        argv.append("--fast")
    argv += ["--factor", str(args.factor)]
    return demo_main(argv, out=out)


# -- parser ------------------------------------------------------------------

def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("scenario", help="registered scenario name")
    parser.add_argument("--seed", type=int, default=2002)
    parser.add_argument(
        "--horizon", type=float, default=None,
        help="simulated seconds (default: the scenario's 1800)",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help=f"cap the horizon at {api.FAST_HORIZON:.0f} s (smoke mode)",
    )
    parser.add_argument(
        "--fresh", action="store_true",
        help="re-run even if an equal config is cached",
    )
    parser.add_argument(
        "--set", action="append", default=[], metavar="FIELD=VALUE",
        help="override a neutral field or typed scenario param (repeatable)",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run, list, and compare adaptation scenarios.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="registered scenarios + params")
    p_list.add_argument("--json", action="store_true", help="emit JSON")
    p_list.set_defaults(fn=_cmd_list)

    p_run = sub.add_parser("run", help="run one scenario")
    _add_run_options(p_run)
    p_run.add_argument(
        "--control", action="store_true", help="disable adaptation"
    )
    p_run.add_argument(
        "--name", default=None, help="run name (default: adapted/control)"
    )
    p_run.add_argument(
        "--series", action="store_true",
        help="include full series data in --json output",
    )
    p_run.set_defaults(fn=_cmd_run)

    p_cmp = sub.add_parser("compare", help="adapted vs control")
    _add_run_options(p_cmp)
    p_cmp.set_defaults(fn=_cmd_compare)

    p_rep = sub.add_parser("report", help="full text report of one run")
    _add_run_options(p_rep)
    p_rep.add_argument(
        "--control", action="store_true", help="disable adaptation"
    )
    p_rep.add_argument("--name", default=None)
    p_rep.set_defaults(fn=_cmd_report)

    p_lint = sub.add_parser(
        "lint", help="static analysis over adaptation specs"
    )
    p_lint.add_argument(
        "scenarios", nargs="*", metavar="scenario",
        help="scenarios to lint (default: all registered)",
    )
    p_lint.add_argument(
        "--dsl", default=None, metavar="PATH",
        help="lint one repair-DSL file instead of built scenarios",
    )
    p_lint.add_argument(
        "--no-determinism", action="store_true",
        help="skip the determinism sweep over the repro tree",
    )
    p_lint.add_argument("--json", action="store_true", help="emit JSON")
    p_lint.set_defaults(fn=_cmd_lint)

    p_serve = sub.add_parser(
        "serve", help="HTTP front door for stats, history, and runs"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8023, help="0 picks a free port"
    )
    p_serve.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="build NAME's control plane (never started) behind /stats",
    )
    p_serve.set_defaults(fn=_cmd_serve)

    p_demo = sub.add_parser(
        "live-demo", help="wall-clock adaptation demo (adapted vs control)"
    )
    p_demo.add_argument(
        "--check", action="store_true",
        help="exit 1 unless adapted beats control on burst p95",
    )
    p_demo.add_argument(
        "--fast", action="store_true", help="shorter load phases"
    )
    p_demo.add_argument(
        "--factor", type=float, default=0.75,
        help="required adapted/control burst-p95 ratio (default 0.75)",
    )
    p_demo.add_argument("--json", action="store_true", help="emit JSON")
    p_demo.set_defaults(fn=_cmd_live_demo)

    return parser


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

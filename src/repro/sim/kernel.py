"""The event loop: simulation clock, event heap, and waitable events."""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Sequence

from repro.errors import SimulationError

__all__ = ["Simulator", "Event", "Timeout", "AnyOf", "AllOf"]


class Event:
    """A one-shot occurrence that callbacks (and processes) can wait on.

    Lifecycle: *pending* -> ``succeed(value)`` or ``fail(exception)``.
    Callbacks added after triggering fire immediately (same-time semantics),
    which keeps process wakeup order deterministic.
    """

    __slots__ = ("sim", "_callbacks", "_triggered", "_ok", "_value")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._triggered = False
        self._ok = True
        self._value: Any = None

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        self._trigger(True, value)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if not isinstance(exception, BaseException):
            raise TypeError("Event.fail requires an exception instance")
        self._trigger(False, exception)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._ok = ok
        self._value = value
        callbacks, self._callbacks = self._callbacks, None
        assert callbacks is not None
        for cb in callbacks:
            cb(self)

    # -- waiting ----------------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Invoke ``callback(event)`` when the event triggers.

        If the event already triggered, the callback runs synchronously now.
        """
        if self._callbacks is None:
            callback(self)
        else:
            self._callbacks.append(callback)


class Timeout(Event):
    """An event that succeeds ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = float(delay)
        sim.schedule(self.delay, self.succeed, value)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Sequence[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Succeeds as soon as any child event triggers; value = that event.

    A failing child fails the condition (failure is significant).
    """

    __slots__ = ()

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev.ok:
            self.succeed(ev)
        else:
            self.fail(ev.value)


class AllOf(_Condition):
    """Succeeds once every child has triggered; value = list of child values."""

    __slots__ = ()

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([e.value for e in self.events])


class Simulator:
    """Deterministic discrete-event scheduler.

    * ``schedule(delay, fn, *args)`` runs ``fn`` at ``now + delay``;
    * ties break in scheduling order (a monotone sequence number);
    * ``run(until)`` executes all work up to and including ``until`` and
      leaves ``now == until``.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: List[Any] = []
        self._running = False

    @property
    def now(self) -> float:
        return self._now

    # -- scheduling -------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Run ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        self._seq += 1
        heapq.heappush(self._heap, (float(time), self._seq, fn, args))

    # -- waitable factories ------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    # -- execution ----------------------------------------------------------
    def step(self) -> bool:
        """Execute the earliest pending action; False when queue is empty."""
        if not self._heap:
            return False
        time, _, fn, args = heapq.heappop(self._heap)
        self._now = time
        fn(*args)
        return True

    def peek(self) -> Optional[float]:
        """Time of the next pending action, or None."""
        return self._heap[0][0] if self._heap else None

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time would pass ``until``.

        With ``until`` given, all actions scheduled at exactly ``until``
        still execute, and the clock finishes at ``until`` even if the queue
        drained earlier.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        try:
            if until is None:
                while self.step():
                    pass
                return
            if until < self._now:
                raise SimulationError(
                    f"run(until={until}) is in the past (now={self._now})"
                )
            while self._heap and self._heap[0][0] <= until:
                self.step()
            self._now = float(until)
        finally:
            self._running = False

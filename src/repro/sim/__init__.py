"""Discrete-event simulation kernel (substrate S1).

A small, deterministic, generator-based kernel in the style of SimPy:
processes are Python generators that ``yield`` waitable :class:`Event`
objects (timeouts, store gets, other processes).  Events scheduled for the
same instant fire in scheduling order, so runs are fully reproducible.
"""

from repro.sim.kernel import Simulator, Event, Timeout, AnyOf, AllOf
from repro.sim.process import Process, Interrupted
from repro.sim.primitives import Store, Resource
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Process",
    "Interrupted",
    "Store",
    "Resource",
    "Trace",
    "TraceRecord",
]

"""Generator-based simulated processes.

A process body is a generator that yields :class:`~repro.sim.kernel.Event`
objects; the process sleeps until the yielded event triggers, then resumes
with the event's value (or the event's exception raised at the yield point).

Processes are themselves events: they trigger when the body returns, with
the generator's return value, so processes can wait on each other.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.errors import SimulationError
from repro.sim.kernel import Event, Simulator

__all__ = ["Process", "Interrupted"]


class Interrupted(Exception):
    """Raised inside a process when another party interrupts it.

    Carries ``cause`` so the interrupted code can decide how to react
    (e.g. a server told to deactivate mid-wait).
    """

    def __init__(self, cause: Any = None):
        super().__init__(f"interrupted: {cause!r}")
        self.cause = cause


class Process(Event):
    """A running simulated activity wrapping a generator.

    The first step of the body runs via the scheduler (never synchronously
    inside the constructor), so creation order never reorders side effects
    within the same instant unfairly.
    """

    __slots__ = ("name", "_gen", "_waiting_on", "_started", "_finished")

    def __init__(
        self, sim: Simulator, body: Generator[Event, Any, Any], name: str = "proc"
    ):
        if not hasattr(body, "send"):
            raise TypeError(
                f"Process body must be a generator, got {type(body).__name__}; "
                "did you call the function instead of passing its generator?"
            )
        super().__init__(sim)
        self.name = name
        self._gen = body
        self._waiting_on: Optional[Event] = None
        self._started = False
        self._finished = False
        sim.schedule(0.0, self._resume, None, None)

    # -- state -------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        return not self._finished

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "done" if self._finished else ("waiting" if self._waiting_on else "ready")
        )
        return f"<Process {self.name} {state}>"

    # -- control -----------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at its yield point.

        No-op on finished processes.  The event the process was waiting on
        remains pending; a process that survives the interrupt must not
        assume that wait completed.
        """
        if self._finished:
            return
        if not self._started:
            # Interrupt before first step: cancel the body outright.
            self._finish_with_exception(Interrupted(cause))
            return
        waiting, self._waiting_on = self._waiting_on, None
        if waiting is None:
            raise SimulationError(
                "cannot interrupt a process that is currently running"
            )
        self.sim.schedule(0.0, self._throw, Interrupted(cause))

    def kill(self) -> None:
        """Terminate the process without running any more of its body."""
        if self._finished:
            return
        self._finished = True
        self._waiting_on = None
        self._gen.close()
        if not self.triggered:
            self.succeed(None)

    # -- engine ------------------------------------------------------------
    def _resume(self, event: Optional[Event], _unused: Any) -> None:
        if self._finished:
            return
        self._started = True
        self._waiting_on = None
        try:
            if event is None:
                target = self._gen.send(None)
            elif event.ok:
                target = self._gen.send(event.value)
            else:
                target = self._gen.throw(event.value)
        except StopIteration as stop:
            self._finish_with_value(stop.value)
            return
        except Interrupted as exc:
            self._finish_with_exception(exc)
            return
        self._wait_on(target)

    def _throw(self, exc: BaseException) -> None:
        if self._finished:
            return
        try:
            target = self._gen.throw(exc)
        except StopIteration as stop:
            self._finish_with_value(stop.value)
            return
        except Interrupted as unhandled:
            self._finish_with_exception(unhandled)
            return
        self._wait_on(target)

    def _wait_on(self, target: Event) -> None:
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}; "
                "processes may only yield Event instances"
            )
        if target.sim is not self.sim:
            raise SimulationError("process yielded an event from another simulator")
        self._waiting_on = target
        target.add_callback(self._on_wakeup)

    def _on_wakeup(self, event: Event) -> None:
        # Ignore stale wakeups from events we stopped waiting on (interrupt).
        if self._waiting_on is not event:
            return
        self._resume(event, None)

    def _finish_with_value(self, value: Any) -> None:
        self._finished = True
        self.succeed(value)

    def _finish_with_exception(self, exc: BaseException) -> None:
        self._finished = True
        # An unhandled Interrupted terminates the process quietly; any
        # waiter sees the interrupt cause as the failure.
        self.fail(exc)

"""Waitable FIFO stores and counted resources.

:class:`Store` models the paper's request queues: requests are ``put`` by
the request-queue splitter and ``get`` by servers in FIFO order — both the
items and the waiting getters are FIFO, so service order is deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List

from repro.errors import SimulationError
from repro.sim.kernel import Event, Simulator

__all__ = ["Store", "Resource"]


class Store:
    """Unbounded FIFO store with waitable ``get``.

    ``put`` is immediate (the paper's queues are unbounded — queue growth
    *is* the measured "server load").  ``get`` returns an Event that
    succeeds with the oldest item as soon as one is available.
    """

    def __init__(self, sim: Simulator, name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    # -- inspection ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> List[Any]:
        """Snapshot of queued items, oldest first."""
        return list(self._items)

    @property
    def waiting_getters(self) -> int:
        return len(self._getters)

    # -- operations ----------------------------------------------------------
    def put(self, item: Any) -> None:
        """Enqueue ``item``; wakes the oldest waiting getter, if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event yielding the oldest item (FIFO among getters)."""
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def cancel_get(self, event: Event) -> bool:
        """Withdraw a pending get (used when a waiting server deactivates).

        Returns True if the event was still queued and has been removed.
        """
        try:
            self._getters.remove(event)
            return True
        except ValueError:
            return False

    def drain(self) -> List[Any]:
        """Remove and return all queued items (used by moveClient)."""
        items = list(self._items)
        self._items.clear()
        return items

    def transfer_to(self, other: "Store") -> int:
        """Move every queued item to ``other`` preserving order.

        Returns the number of items moved.  Used when a client is migrated:
        its in-queue requests follow it to the new request queue.
        """
        moved = 0
        for item in self.drain():
            other.put(item)
            moved += 1
        return moved


class Resource:
    """A counted resource with FIFO acquisition.

    Not used by the headline experiment (servers own their queue directly)
    but provided for example applications and the pipeline style demo.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = int(capacity)
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    def acquire(self) -> Event:
        """Event that succeeds once a unit is held by the caller."""
        ev = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed(self)  # unit passes directly to the waiter
        else:
            self._in_use -= 1

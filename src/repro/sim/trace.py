"""Structured run traces.

Every layer appends :class:`TraceRecord` entries (repair started/finished,
server activated, client moved, constraint violated...).  The experiment
harness mines the trace for the paper's qualitative claims: repair
durations, activation times of the spare servers, and client-move
oscillation during the stress phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "Trace"]


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped occurrence.

    ``category`` is a dotted topic such as ``"repair.start"`` or
    ``"runtime.server.activate"``; ``data`` carries free-form details.
    """

    time: float
    category: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        details = " ".join(f"{k}={v}" for k, v in sorted(self.data.items()))
        return f"[{self.time:10.3f}] {self.category:<28} {details}".rstrip()


class Trace:
    """Append-only record list with category filtering and subscriptions."""

    def __init__(self) -> None:
        self._records: List[TraceRecord] = []
        self._listeners: List[Callable[[TraceRecord], None]] = []

    def emit(self, time: float, category: str, **data: Any) -> TraceRecord:
        rec = TraceRecord(time=time, category=category, data=data)
        self._records.append(rec)
        for listener in self._listeners:
            listener(rec)
        return rec

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Invoke ``listener`` synchronously on every future record."""
        self._listeners.append(listener)

    # -- queries -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> List[TraceRecord]:
        return list(self._records)

    def select(
        self,
        prefix: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> List[TraceRecord]:
        """Records whose category starts with ``prefix`` within [start, end]."""
        out = []
        for r in self._records:
            if not r.category.startswith(prefix):
                continue
            if start is not None and r.time < start:
                continue
            if end is not None and r.time > end:
                continue
            out.append(r)
        return out

    def intervals(self, start_cat: str, end_cat: str) -> List[tuple]:
        """Pair up start/end records into ``(t_start, t_end, start_record)``.

        Matches greedily in time order (sufficient because the repair engine
        serializes repairs).  Unmatched starts are dropped.
        """
        out = []
        pending: Optional[TraceRecord] = None
        for r in self._records:
            if r.category == start_cat:
                pending = r
            elif r.category == end_cat and pending is not None:
                out.append((pending.time, r.time, pending))
                pending = None
        return out

    def dump(self, prefix: str = "") -> str:
        return "\n".join(str(r) for r in self.select(prefix))

"""Interpreter binding parsed repair-DSL declarations to the repair engine.

A :class:`DslTactic` implements the :class:`~repro.repair.tactic.Tactic`
interface (savepoint rollback on failure); a :class:`DslStrategy`
implements :class:`~repro.repair.strategy.RepairStrategy`.  Tactics are
callable from strategy bodies by name; style operators are callable as
element methods (``sgrp.addServer()``) through the context's function
table.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.constraints.evaluator import Evaluator
from repro.errors import EvaluationError, RepairAborted
from repro.repair.context import RepairContext
from repro.repair.dsl.ast import (
    AbortStmt,
    CommitStmt,
    ExprStmt,
    ForeachStmt,
    IfStmt,
    LetStmt,
    ReturnStmt,
    Stmt,
    StrategyDecl,
    TacticDecl,
)
from repro.repair.strategy import RepairOutcome, RepairStrategy
from repro.repair.tactic import Tactic

__all__ = ["DslTactic", "DslStrategy", "build_strategies"]


class _Return(Exception):
    def __init__(self, value: Any):
        self.value = value


class _Commit(Exception):
    pass


class _Executor:
    """Executes statement lists against a RepairContext."""

    def __init__(self) -> None:
        self.evaluator = Evaluator()

    def run_block(self, stmts: Sequence[Stmt], ctx: RepairContext) -> None:
        for stmt in stmts:
            self.run_stmt(stmt, ctx)

    def run_stmt(self, stmt: Stmt, ctx: RepairContext) -> None:
        if isinstance(stmt, LetStmt):
            value = self.evaluator.evaluate(stmt.value, ctx)
            ctx.set_local(stmt.name, value)
        elif isinstance(stmt, IfStmt):
            cond = self.evaluator.evaluate(stmt.cond, ctx)
            if not isinstance(cond, bool):
                raise EvaluationError(f"if condition must be boolean, got {cond!r}")
            if cond:
                self.run_block(stmt.then_block, ctx)
            elif stmt.else_block is not None:
                self.run_block(stmt.else_block, ctx)
        elif isinstance(stmt, ForeachStmt):
            domain = self.evaluator.evaluate(stmt.domain, ctx)
            if not isinstance(domain, (list, tuple, set, frozenset)):
                raise EvaluationError("foreach requires a collection")
            for item in list(domain):
                ctx.push({stmt.var: item})
                try:
                    self.run_block(stmt.body, ctx)
                finally:
                    ctx.pop()
        elif isinstance(stmt, ReturnStmt):
            value = (
                self.evaluator.evaluate(stmt.value, ctx)
                if stmt.value is not None else None
            )
            raise _Return(value)
        elif isinstance(stmt, CommitStmt):
            raise _Commit()
        elif isinstance(stmt, AbortStmt):
            raise RepairAborted(stmt.reason)
        elif isinstance(stmt, ExprStmt):
            self.evaluator.evaluate(stmt.expr, ctx)
        else:  # pragma: no cover - parser produces only the above
            raise EvaluationError(f"unknown statement {type(stmt).__name__}")


class DslTactic(Tactic):
    """A tactic parsed from DSL text."""

    def __init__(self, decl: TacticDecl):
        self.decl = decl
        self.name = decl.name
        self._executor = _Executor()
        self._pending_args: Optional[Sequence[Any]] = None

    def invoke(self, ctx: RepairContext, args: Sequence[Any]) -> bool:
        """Call with positional arguments (from a strategy body)."""
        if len(args) != len(self.decl.params):
            raise EvaluationError(
                f"tactic {self.name} expects {len(self.decl.params)} args, "
                f"got {len(args)}"
            )
        self._pending_args = args
        try:
            return self.run(ctx)  # Tactic.run adds savepoint semantics
        finally:
            self._pending_args = None

    def _apply(self, ctx: RepairContext) -> bool:
        args = self._pending_args or ()
        frame = {p.name: a for p, a in zip(self.decl.params, args)}
        ctx.push(frame)
        try:
            self._executor.run_block(self.decl.body, ctx)
        except _Return as ret:
            return bool(ret.value)
        finally:
            ctx.pop()
        # Falling off the end of a tactic body means "nothing to report":
        # treat as failure so the strategy can try the next tactic.
        return False


class DslStrategy(RepairStrategy):
    """A strategy parsed from DSL text.

    The engine binds the strategy's declared parameters positionally from
    ``ctx.bindings['__strategy_args__']`` (typically the violating scope
    element, Figure 5's ``badRole``).
    """

    def __init__(self, decl: StrategyDecl, tactics: Dict[str, DslTactic]):
        self.decl = decl
        self.name = decl.name
        self.tactics = dict(tactics)
        self._executor = _Executor()

    def run(self, ctx: RepairContext) -> RepairOutcome:
        outcome = RepairOutcome(False, self.name)

        # Expose tactics as callable functions inside this strategy.
        def make_callable(tactic: DslTactic):
            def call(_ectx, *args: Any) -> bool:
                outcome.tactics_tried.append(tactic.name)
                ok = tactic.invoke(ctx, args)
                if ok:
                    outcome.tactic_applied = tactic.name
                return ok

            return call

        for tname, tactic in self.tactics.items():
            ctx.functions[tname] = make_callable(tactic)

        args = list(ctx.bindings.get("__strategy_args__", ()))
        if len(args) < len(self.decl.params):
            raise EvaluationError(
                f"strategy {self.name} expects {len(self.decl.params)} args, "
                f"got {len(args)}"
            )
        frame = {p.name: a for p, a in zip(self.decl.params, args)}
        ctx.push(frame)
        try:
            self._executor.run_block(self.decl.body, ctx)
        except _Commit:
            outcome.committed = True
            return outcome
        except _Return as ret:
            # a strategy returning truthy counts as commit
            outcome.committed = bool(ret.value)
            if not outcome.committed:
                raise RepairAborted("StrategyReturnedFalse")
            return outcome
        finally:
            ctx.pop()
        raise RepairAborted("NoCommit")


def build_strategies(document) -> Dict[str, DslStrategy]:
    """Instantiate every strategy in a parsed document with its tactics."""
    tactics = {name: DslTactic(decl) for name, decl in document.tactics.items()}
    return {
        name: DslStrategy(decl, tactics)
        for name, decl in document.strategies.items()
    }

"""Parser for the repair DSL (Figure 5 syntax).

Two things beyond the grammar itself:

* every declaration and statement node records the ``line``/``column``
  of its first token (the lint pass anchors findings there);
* a parse failure *inside* a named declaration is re-raised with the
  declaration named in the message — ``in tactic 'fixServerLoad':
  expected ';', got '}' (line 21, column 5)`` — so multi-document
  sources point at the offending strategy/tactic, not just a bare
  coordinate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.acme.lexer import TokenStream, tokenize
from repro.constraints.parser import ExpressionParser
from repro.errors import ParseError
from repro.repair.dsl.ast import (
    AbortStmt,
    CommitStmt,
    ExprStmt,
    ForeachStmt,
    IfStmt,
    InvariantDecl,
    LetStmt,
    Param,
    ReturnStmt,
    Stmt,
    StrategyDecl,
    TacticDecl,
)

__all__ = ["RepairDocument", "parse_repair_dsl"]


@dataclass
class RepairDocument:
    """All declarations found in one repair-DSL source."""

    strategies: Dict[str, StrategyDecl] = field(default_factory=dict)
    tactics: Dict[str, TacticDecl] = field(default_factory=dict)
    invariants: List[InvariantDecl] = field(default_factory=list)


class _DslParser:
    def __init__(self, source: str):
        self.ts = TokenStream(tokenize(source))
        self.expr = ExpressionParser(self.ts)
        self.doc = RepairDocument()

    def parse(self) -> RepairDocument:
        while self.ts.current.kind != "eof":
            if self.ts.at_ident("strategy"):
                decl = self._strategy()
                if decl.name in self.doc.strategies:
                    raise self.ts.error(f"duplicate strategy {decl.name!r}")
                self.doc.strategies[decl.name] = decl
            elif self.ts.at_ident("tactic"):
                decl = self._tactic()
                if decl.name in self.doc.tactics:
                    raise self.ts.error(f"duplicate tactic {decl.name!r}")
                self.doc.tactics[decl.name] = decl
            elif self.ts.at_ident("invariant"):
                self.doc.invariants.append(self._invariant())
            else:
                raise self.ts.error(
                    f"expected strategy/tactic/invariant, got {self.ts.current.text!r}"
                )
        return self.doc

    # -- declarations -------------------------------------------------------
    def _decl_error(self, kind: str, name: str, exc: ParseError) -> ParseError:
        """Re-raise a parse error naming its enclosing declaration."""
        return ParseError(
            f"in {kind} {name!r}: {exc.bare_message}", exc.line, exc.column
        )

    def _params(self) -> List[Param]:
        self.ts.expect_punct("(")
        params: List[Param] = []
        while not self.ts.at_punct(")"):
            tok = self.ts.expect_ident()
            name = tok.text
            type_name: Optional[str] = None
            if self.ts.match_punct(":"):
                type_name = self._type_name()
            params.append(Param(name, type_name, line=tok.line, column=tok.column))
            if not self.ts.match_punct(","):
                break
        self.ts.expect_punct(")")
        return params

    def _type_name(self) -> str:
        name = self.ts.expect_ident().text
        if name == "set" and self.ts.match_punct("{"):
            inner = self.ts.expect_ident().text
            self.ts.expect_punct("}")
            return inner
        return name

    def _strategy(self) -> StrategyDecl:
        kw = self.ts.expect_ident("strategy")
        name = self.ts.expect_ident().text
        try:
            params = self._params()
            self.ts.expect_punct("=")
            body = self._block()
        except ParseError as exc:
            raise self._decl_error("strategy", name, exc) from None
        return StrategyDecl(name, params, body, line=kw.line, column=kw.column)

    def _tactic(self) -> TacticDecl:
        kw = self.ts.expect_ident("tactic")
        name = self.ts.expect_ident().text
        try:
            params = self._params()
            returns: Optional[str] = None
            if self.ts.match_punct(":"):
                returns = self._type_name()
            self.ts.expect_punct("=")
            body = self._block()
        except ParseError as exc:
            raise self._decl_error("tactic", name, exc) from None
        return TacticDecl(name, params, body, returns, line=kw.line, column=kw.column)

    def _invariant(self) -> InvariantDecl:
        """``invariant name : <expr tokens> ! -> strategy(arg);``"""
        kw = self.ts.expect_ident("invariant")
        name = self.ts.expect_ident().text
        try:
            self.ts.expect_punct(":")
            pieces: List[str] = []
            while not (self.ts.at_punct("!") and self.ts.peek().is_punct("->")):
                tok = self.ts.current
                if tok.kind == "eof":
                    raise self.ts.error("unterminated invariant (expected '! ->')")
                pieces.append(tok.text if tok.kind != "string" else f'"{tok.text}"')
                self.ts.advance()
            self.ts.expect_punct("!")
            self.ts.expect_punct("->")
            strategy = self.ts.expect_ident().text
            argument: Optional[str] = None
            if self.ts.match_punct("("):
                if not self.ts.at_punct(")"):
                    argument = self.ts.expect_ident().text
                self.ts.expect_punct(")")
            self.ts.expect_punct(";")
        except ParseError as exc:
            raise self._decl_error("invariant", name, exc) from None
        from repro.acme.parser import _join_tokens

        return InvariantDecl(
            name,
            _join_tokens(pieces),
            strategy,
            argument,
            line=kw.line,
            column=kw.column,
        )

    # -- statements -----------------------------------------------------------
    def _block(self) -> List[Stmt]:
        self.ts.expect_punct("{")
        stmts: List[Stmt] = []
        while not self.ts.match_punct("}"):
            stmts.append(self._statement())
        return stmts

    def _statement(self) -> Stmt:
        tok = self.ts.current
        if self.ts.at_ident("let"):
            return self._let()
        if self.ts.at_ident("if"):
            return self._if()
        if self.ts.at_ident("foreach"):
            return self._foreach()
        if self.ts.at_ident("return"):
            return self._return()
        if self.ts.at_ident("commit"):
            self.ts.advance()
            self.ts.expect_ident("repair")
            self.ts.expect_punct(";")
            return CommitStmt(line=tok.line, column=tok.column)
        if self.ts.at_ident("abort"):
            self.ts.advance()
            reason = self.ts.expect_ident().text
            self.ts.expect_punct(";")
            return AbortStmt(reason, line=tok.line, column=tok.column)
        expr = self.expr.expression()
        self.ts.expect_punct(";")
        return ExprStmt(expr, line=tok.line, column=tok.column)

    def _let(self) -> LetStmt:
        kw = self.ts.expect_ident("let")
        name = self.ts.expect_ident().text
        type_name: Optional[str] = None
        if self.ts.match_punct(":"):
            type_name = self._type_name()
        self.ts.expect_punct("=")
        value = self.expr.expression()
        self.ts.expect_punct(";")
        return LetStmt(name, type_name, value, line=kw.line, column=kw.column)

    def _if(self) -> IfStmt:
        kw = self.ts.expect_ident("if")
        self.ts.expect_punct("(")
        cond = self.expr.expression()
        self.ts.expect_punct(")")
        then_block = self._block()
        else_block: Optional[List[Stmt]] = None
        if self.ts.match_ident("else"):
            if self.ts.at_ident("if"):
                else_block = [self._if()]
            else:
                else_block = self._block()
        return IfStmt(cond, then_block, else_block, line=kw.line, column=kw.column)

    def _foreach(self) -> ForeachStmt:
        kw = self.ts.expect_ident("foreach")
        var = self.ts.expect_ident().text
        self.ts.expect_ident("in")
        domain = self.expr.expression()
        body = self._block()
        return ForeachStmt(var, domain, body, line=kw.line, column=kw.column)

    def _return(self) -> ReturnStmt:
        kw = self.ts.expect_ident("return")
        if self.ts.match_punct(";"):
            return ReturnStmt(None, line=kw.line, column=kw.column)
        value = self.expr.expression()
        self.ts.expect_punct(";")
        return ReturnStmt(value, line=kw.line, column=kw.column)


def parse_repair_dsl(source: str) -> RepairDocument:
    """Parse repair-DSL text into strategies, tactics, and invariants."""
    return _DslParser(source).parse()

"""Statement/declaration AST for the repair DSL (expressions come from
:mod:`repro.constraints.ast`)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.constraints.ast import Node

__all__ = [
    "Param",
    "Stmt",
    "LetStmt",
    "IfStmt",
    "ForeachStmt",
    "ReturnStmt",
    "CommitStmt",
    "AbortStmt",
    "ExprStmt",
    "TacticDecl",
    "StrategyDecl",
    "InvariantDecl",
]


@dataclass(frozen=True)
class Param:
    """A declared parameter: ``badRole : ClientRoleT``."""

    name: str
    type_name: Optional[str] = None


class Stmt:
    """Base statement."""


@dataclass
class LetStmt(Stmt):
    """``let x [: T] = expr;`` — binds in the enclosing script scope."""

    name: str
    type_name: Optional[str]
    value: Node


@dataclass
class IfStmt(Stmt):
    """``if (cond) { ... } [else { ... } | else if ...]``."""

    cond: Node
    then_block: List[Stmt]
    else_block: Optional[List[Stmt]] = None


@dataclass
class ForeachStmt(Stmt):
    """``foreach x in expr { ... }``."""

    var: str
    domain: Node
    body: List[Stmt] = field(default_factory=list)


@dataclass
class ReturnStmt(Stmt):
    """``return [expr];`` — ends a tactic with its boolean result."""

    value: Optional[Node] = None


@dataclass
class CommitStmt(Stmt):
    """``commit repair;`` — ends a strategy successfully."""


@dataclass
class AbortStmt(Stmt):
    """``abort Reason;`` — aborts the whole repair."""

    reason: str


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for effect (operator/tactic invocation)."""

    expr: Node


@dataclass
class TacticDecl:
    name: str
    params: List[Param]
    body: List[Stmt]
    returns: Optional[str] = None


@dataclass
class StrategyDecl:
    name: str
    params: List[Param]
    body: List[Stmt]


@dataclass
class InvariantDecl:
    """``invariant name : expr ! -> strategyName(argName);``"""

    name: str
    expression: str
    strategy: str
    argument: Optional[str] = None

"""Statement/declaration AST for the repair DSL (expressions come from
:mod:`repro.constraints.ast`).

Every statement and declaration carries the 1-based ``line``/``column``
of its first token, so downstream tooling — most importantly
:mod:`repro.lint` — can anchor findings to the source text.  The fields
default to ``0`` ("position unknown") so hand-built ASTs stay cheap to
construct in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.constraints.ast import Node

__all__ = [
    "Param",
    "Stmt",
    "LetStmt",
    "IfStmt",
    "ForeachStmt",
    "ReturnStmt",
    "CommitStmt",
    "AbortStmt",
    "ExprStmt",
    "TacticDecl",
    "StrategyDecl",
    "InvariantDecl",
]


@dataclass(frozen=True)
class Param:
    """A declared parameter: ``badRole : ClientRoleT``."""

    name: str
    type_name: Optional[str] = None
    line: int = 0
    column: int = 0


class Stmt:
    """Base statement."""

    line: int = 0
    column: int = 0


@dataclass
class LetStmt(Stmt):
    """``let x [: T] = expr;`` — binds in the enclosing script scope."""

    name: str
    type_name: Optional[str]
    value: Node
    line: int = 0
    column: int = 0


@dataclass
class IfStmt(Stmt):
    """``if (cond) { ... } [else { ... } | else if ...]``."""

    cond: Node
    then_block: List[Stmt]
    else_block: Optional[List[Stmt]] = None
    line: int = 0
    column: int = 0


@dataclass
class ForeachStmt(Stmt):
    """``foreach x in expr { ... }``."""

    var: str
    domain: Node
    body: List[Stmt] = field(default_factory=list)
    line: int = 0
    column: int = 0


@dataclass
class ReturnStmt(Stmt):
    """``return [expr];`` — ends a tactic with its boolean result."""

    value: Optional[Node] = None
    line: int = 0
    column: int = 0


@dataclass
class CommitStmt(Stmt):
    """``commit repair;`` — ends a strategy successfully."""

    line: int = 0
    column: int = 0


@dataclass
class AbortStmt(Stmt):
    """``abort Reason;`` — aborts the whole repair."""

    reason: str
    line: int = 0
    column: int = 0


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for effect (operator/tactic invocation)."""

    expr: Node
    line: int = 0
    column: int = 0


@dataclass
class TacticDecl:
    name: str
    params: List[Param]
    body: List[Stmt]
    returns: Optional[str] = None
    line: int = 0
    column: int = 0


@dataclass
class StrategyDecl:
    name: str
    params: List[Param]
    body: List[Stmt]
    line: int = 0
    column: int = 0


@dataclass
class InvariantDecl:
    """``invariant name : expr ! -> strategyName(argName);``"""

    name: str
    expression: str
    strategy: str
    argument: Optional[str] = None
    line: int = 0
    column: int = 0

"""The repair-strategy language of the paper's Figure 5 (substrate S10).

Accepts near-verbatim Figure 5 text::

    strategy fixLatency(badRole : ClientRoleT) = {
        let badClient : ClientT =
            select one cli : ClientT in self.components |
                exists p : RequestT in cli.ports | attached(p, badRole);
        if (fixServerLoad(badClient)) { commit repair; }
        else if (fixBandwidth(badClient, badRole)) { commit repair; }
        else { abort ModelError; }
    }

    tactic fixServerLoad(client : ClientT) : boolean = { ... }

Expressions are the constraint language; statements add ``let``, ``if``,
``foreach``, ``return``, ``commit repair`` and ``abort``.  Tactics called
from a strategy roll back their model edits when they return false
(savepoint semantics, see :mod:`repro.repair.tactic`).
"""

from repro.repair.dsl.parser import parse_repair_dsl, RepairDocument
from repro.repair.dsl.interp import DslStrategy, DslTactic

__all__ = ["parse_repair_dsl", "RepairDocument", "DslStrategy", "DslTactic"]

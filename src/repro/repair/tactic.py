"""Tactics: precondition-guarded repair steps.

"Each repair tactic is guarded by a precondition that determines whether
that tactic is applicable" (§3.2).  A tactic's :meth:`run` returns True
when it applied a repair; False when inapplicable (its precondition failed
or it could not act).  Model edits made by a failing tactic are rolled back
to the savepoint taken at tactic entry, so the enclosing strategy can try
the next tactic against a clean model.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import RepairAborted, TacticFailure
from repro.repair.context import RepairContext
from repro.repair.footprint import touched_since

__all__ = ["Tactic", "PythonTactic"]


class Tactic:
    """Interface: subclasses implement :meth:`_apply`."""

    name: str = "tactic"

    def run(self, ctx: RepairContext) -> bool:
        """Execute with savepoint semantics.

        * returns True  — tactic applied; its edits stay pending commit;
        * returns False — inapplicable; any partial edits are rolled back;
        * raises :class:`RepairAborted` — aborts the whole repair (the
          paper's ``abort NoServerGroupFound``); rollback is handled by the
          strategy/engine above.

        An applied tactic's touched-element set is recorded on the
        context (``ctx.tactic_footprints``), feeding the concurrent
        engine's footprint analysis and the repair history.

        When the engine installs a circuit-breaker bank on the context,
        an open breaker for (this tactic, the repair's scope) makes the
        tactic report "not applicable" without evaluating anything, so
        the strategy falls through to its next tactic or aborts into
        the human-alert escalation.
        """
        breakers = getattr(ctx, "breakers", None)
        if breakers is not None and not breakers.allow(
            self.name, getattr(ctx, "repair_scope", "") or ""
        ):
            return False
        mark = ctx.mark()
        epoch = ctx.system.epoch
        structure_epoch = ctx.system.structure_epoch
        try:
            applied = self._apply(ctx)
        except TacticFailure:
            ctx.rollback_to(mark)
            return False
        except RepairAborted:
            raise
        if not applied:
            ctx.rollback_to(mark)
            return False
        ctx.note_tactic_touch(
            self.name, touched_since(ctx.system, epoch, structure_epoch)
        )
        return True

    def _apply(self, ctx: RepairContext) -> bool:  # pragma: no cover - interface
        raise NotImplementedError


class PythonTactic(Tactic):
    """A tactic written as plain Python callables.

    ``guard`` (optional) is the precondition; ``script`` performs the
    repair and returns truthiness of success.  Either may raise
    :class:`TacticFailure` (→ tactic returns False) or
    :class:`RepairAborted` (→ whole repair aborts).
    """

    def __init__(
        self,
        name: str,
        script: Callable[[RepairContext], bool],
        guard: Optional[Callable[[RepairContext], bool]] = None,
    ):
        self.name = name
        self.script = script
        self.guard = guard

    def _apply(self, ctx: RepairContext) -> bool:
        if self.guard is not None and not self.guard(ctx):
            return False
        return bool(self.script(ctx))

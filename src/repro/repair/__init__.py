"""Repair machinery (substrates S9/S10): strategies, tactics, transactions,
the Figure 5 repair DSL, and the architecture manager that runs them.

Flow (paper §3.2): a constraint violation triggers a **repair strategy**; a
strategy tries precondition-guarded **tactics**; tactic scripts invoke
style **operators** that edit the architectural model *inside a
transaction* and record **runtime intents**; on ``commit repair`` the
intents are handed to the translator for execution against the running
system; on ``abort`` (or tactic failure) the model edits roll back.
"""

from repro.repair.context import RepairContext, RuntimeIntent
from repro.repair.footprint import Footprint
from repro.repair.transactions import ModelTransaction
from repro.repair.tactic import Tactic, PythonTactic
from repro.repair.strategy import (
    RepairOutcome,
    RepairStrategy,
    PythonStrategy,
    FirstSuccessStrategy,
)
from repro.repair.engine import ArchitectureManager, RepairRecord
from repro.repair.history import RepairHistory
from repro.repair.resilience import (
    BreakerPolicy,
    CircuitBreakerBank,
    QuarantinePolicy,
    RetryPolicy,
)
from repro.repair.sharding import CrossRepairOutcome, ShardCoordinator
from repro.repair.dsl import parse_repair_dsl, DslStrategy, DslTactic

__all__ = [
    "ShardCoordinator",
    "CrossRepairOutcome",
    "RepairContext",
    "RuntimeIntent",
    "Footprint",
    "ModelTransaction",
    "Tactic",
    "PythonTactic",
    "RepairOutcome",
    "RepairStrategy",
    "PythonStrategy",
    "FirstSuccessStrategy",
    "ArchitectureManager",
    "RepairRecord",
    "RepairHistory",
    "RetryPolicy",
    "BreakerPolicy",
    "QuarantinePolicy",
    "CircuitBreakerBank",
    "parse_repair_dsl",
    "DslStrategy",
    "DslTactic",
]

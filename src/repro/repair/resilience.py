"""Resilient repair-execution policies: retry, circuit breaker, quarantine.

The repair engine's original contract assumed effectors are instant and
infallible; the fault plane breaks that assumption on purpose.  This
module holds the three policy objects the hardened engine consumes —
all frozen dataclasses, so they are hashable and safe inside cached run
configurations — plus the stateful :class:`CircuitBreakerBank` that
tracks per-(tactic, scope) health at run time:

* :class:`RetryPolicy` — bounded re-attempts of a failed repair with
  exponential backoff and seeded jitter (recorded per
  :class:`~repro.repair.history.RepairRecord`, so histories stay
  reproducible).
* :class:`BreakerPolicy` / :class:`CircuitBreakerBank` — a breaker per
  (tactic, scope) opens after K consecutive failures; while open the
  tactic reports "not applicable" for that scope, so the strategy falls
  through to its next tactic or aborts into the existing human-alert
  escalation.  After ``reset_timeout`` sim-seconds the breaker goes
  half-open: the next attempt is allowed through, success closes it,
  failure re-opens it.
* :class:`QuarantinePolicy` — a scope whose repairs keep failing is
  quarantined: the manager skips it for a growing period instead of
  hot-looping, and flags it in ``repair_stats``.

No scope is silently abandoned: an open breaker either recovers via its
half-open probe or the strategy's abort path escalates through
``alert_after_aborts`` to a human alert, and quarantine merely reduces
cadence — the scope is re-evaluated when the period expires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.sim.kernel import Simulator
from repro.sim.trace import Trace

__all__ = [
    "RetryPolicy",
    "BreakerPolicy",
    "QuarantinePolicy",
    "CircuitBreakerBank",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    Attempt ``k`` (1-based; the first retry is attempt 2) waits
    ``backoff * multiplier**(k-2) * (1 + jitter * u)`` sim-seconds,
    with ``u`` uniform in [0, 1) from the engine's private retry
    stream.  ``max_attempts`` counts the initial attempt, so the
    default allows two retries.
    """

    max_attempts: int = 3
    backoff: float = 5.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def validate(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("retry max_attempts must be >= 1")
        if self.backoff <= 0:
            raise ValueError("retry backoff must be positive")
        if self.multiplier < 1.0:
            raise ValueError("retry multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("retry jitter must be in [0, 1]")

    def backoff_for(self, attempt: int, rng) -> float:
        """Backoff before `attempt` (>= 2) runs, jittered from `rng`."""
        base = self.backoff * self.multiplier ** max(0, attempt - 2)
        return float(base * (1.0 + self.jitter * float(rng.random())))


@dataclass(frozen=True)
class BreakerPolicy:
    """Open a (tactic, scope) breaker after K consecutive failures."""

    failure_threshold: int = 3
    reset_timeout: float = 60.0

    def validate(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("breaker failure_threshold must be >= 1")
        if self.reset_timeout <= 0:
            raise ValueError("breaker reset_timeout must be positive")


@dataclass(frozen=True)
class QuarantinePolicy:
    """Reduced-cadence evaluation for scopes whose repairs keep failing.

    After ``after_failures`` consecutive failed repairs on a scope the
    manager stops evaluating it for ``period`` sim-seconds; every
    further quarantine round multiplies the period by ``multiplier`` up
    to ``max_period``.  A successful repair clears the scope's count.
    """

    after_failures: int = 3
    period: float = 120.0
    multiplier: float = 2.0
    max_period: float = 900.0

    def validate(self) -> None:
        if self.after_failures < 1:
            raise ValueError("quarantine after_failures must be >= 1")
        if self.period <= 0:
            raise ValueError("quarantine period must be positive")
        if self.multiplier < 1.0:
            raise ValueError("quarantine multiplier must be >= 1")
        if self.max_period < self.period:
            raise ValueError("quarantine max_period must be >= period")

    def period_for(self, rounds: int) -> float:
        """Quarantine length for the given prior round count."""
        return min(self.period * self.multiplier ** max(0, rounds), self.max_period)


class _BreakerState:
    __slots__ = ("state", "failures", "open_until", "opened_count")

    def __init__(self) -> None:
        self.state = "closed"
        self.failures = 0
        self.open_until = 0.0
        self.opened_count = 0


class CircuitBreakerBank:
    """Per-(tactic, scope) circuit breakers over simulation time.

    The engine exposes the bank to tactics through the repair context;
    :meth:`~repro.repair.tactic.Tactic.run` consults :meth:`allow`
    before evaluating its guard, so an open breaker looks exactly like
    a non-applicable tactic and the strategy's normal fall-through /
    abort logic takes over.
    """

    def __init__(
        self,
        policy: BreakerPolicy,
        sim: Simulator,
        trace: Optional[Trace] = None,
    ):
        policy.validate()
        self.policy = policy
        self.sim = sim
        self.trace = trace
        self._states: Dict[Tuple[str, str], _BreakerState] = {}
        self.opened = 0
        self.recoveries = 0
        self.rejections = 0

    def _state(self, tactic: str, scope: str) -> _BreakerState:
        key = (tactic, scope)
        state = self._states.get(key)
        if state is None:
            state = _BreakerState()
            self._states[key] = state
        return state

    def allow(self, tactic: str, scope: str) -> bool:
        """May this tactic run on this scope right now?"""
        state = self._states.get((tactic, scope))
        if state is None or state.state == "closed":
            return True
        if state.state == "open":
            if self.sim.now >= state.open_until:
                state.state = "half-open"
                if self.trace is not None:
                    self.trace.emit(
                        self.sim.now,
                        "repair.breaker_half_open",
                        tactic=tactic,
                        scope=scope,
                    )
                return True
            self.rejections += 1
            return False
        # half-open: one probe attempt is already in flight this round;
        # further callers wait for its outcome.
        return True

    def record_failure(self, tactic: str, scope: str) -> None:
        state = self._state(tactic, scope)
        if state.state == "half-open":
            self._open(state, tactic, scope)
            return
        if state.state == "open":
            return
        state.failures += 1
        if state.failures >= self.policy.failure_threshold:
            self._open(state, tactic, scope)

    def record_success(self, tactic: str, scope: str) -> None:
        state = self._states.get((tactic, scope))
        if state is None:
            return
        if state.state == "half-open":
            state.state = "closed"
            state.failures = 0
            self.recoveries += 1
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now,
                    "repair.breaker_closed",
                    tactic=tactic,
                    scope=scope,
                )
        else:
            state.failures = 0

    def _open(self, state: _BreakerState, tactic: str, scope: str) -> None:
        state.state = "open"
        state.failures = 0
        state.open_until = self.sim.now + self.policy.reset_timeout
        state.opened_count += 1
        self.opened += 1
        if self.trace is not None:
            self.trace.emit(
                self.sim.now,
                "repair.breaker_open",
                tactic=tactic,
                scope=scope,
            )

    def states(self) -> Dict[str, str]:
        """Current state per ``tactic@scope`` key (for results/tests)."""
        return {
            f"{tactic}@{scope}": state.state
            for (tactic, scope), state in sorted(self._states.items())
        }

    def stats(self) -> Dict[str, Any]:
        open_now = sum(1 for state in self._states.values() if state.state == "open")
        return {
            "breakers": len(self._states),
            "breaker_opened": self.opened,
            "breaker_recoveries": self.recoveries,
            "breaker_rejections": self.rejections,
            "breakers_open": open_now,
        }

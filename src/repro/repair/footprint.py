"""Read/write footprints: what a repair touches, as data.

The paper's architecture manager serializes repairs — one in flight,
then a settle time (§5.3, §7) — which caps repair throughput at one
violation per settle window even when violations live in unrelated parts
of the model.  To run repairs concurrently *safely*, the engine needs to
answer one question: *does candidate repair B overlap anything repair A
may write or re-check?*  A :class:`Footprint` is that answer's currency:
an immutable set of qualified element names, with a ``universal`` escape
hatch for repairs whose effects cannot be bounded statically (structural
surgery, overflowed dirty logs, non-scope-local invariants).

Two producers feed the engine's footprints:

* **write sets** — :meth:`~repro.repair.transactions.ModelTransaction.touched`
  derives the elements a repair's tactics actually wrote from the
  system's change epochs (the same dirty-scope machinery the incremental
  constraint checker rides);
* **read scopes** — :meth:`~repro.constraints.invariants.Invariant.read_footprint`
  bounds what re-checking the triggering invariant will read
  (:func:`~repro.constraints.compile.is_scope_local` proves scope-local
  invariants read nothing but their scope element and global bindings).

Conservatism is one-sided *within the tracked sets*: an unbounded
footprint reports ``universal=True`` and overlaps everything, so the
engine can only over-serialize, never commit two overlapping **write**
sets (or a write into a re-checked read scope) concurrently.  What is
NOT tracked are ad-hoc reads a strategy makes beyond its invariant's
scope (e.g. scanning neighbors to pick a target): those can observe
another repair's committed-but-still-translating state.  Disjoint-mode
strategies should confine reads to their invariant's scope and their
own write targets, or accept that such reads may be mid-repair values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, FrozenSet, Iterable

from repro.acme.system import ArchSystem

__all__ = ["Footprint", "touched_since"]


@dataclass(frozen=True)
class Footprint:
    """An immutable set of qualified element names a repair may touch.

    ``universal=True`` means "potentially anything" (structural mutation,
    lost change history, or an invariant whose read set cannot be proven
    scope-local); a universal footprint overlaps every other footprint,
    which degrades the engine to serial scheduling — safe by design.
    """

    elements: FrozenSet[str] = frozenset()
    universal: bool = False

    EMPTY: ClassVar["Footprint"]  # populated below
    UNIVERSAL: ClassVar["Footprint"]  # populated below

    @staticmethod
    def of(names: Iterable[str]) -> "Footprint":
        return Footprint(elements=frozenset(names))

    def overlaps(self, other: "Footprint") -> bool:
        """True when the two footprints may touch a common element."""
        if self.universal or other.universal:
            return True
        return not self.elements.isdisjoint(other.elements)

    def union(self, other: "Footprint") -> "Footprint":
        if self.universal or other.universal:
            return Footprint.UNIVERSAL
        return Footprint(elements=self.elements | other.elements)

    def __bool__(self) -> bool:
        return self.universal or bool(self.elements)

    def __str__(self) -> str:
        if self.universal:
            return "{*}"
        return "{" + ", ".join(sorted(self.elements)) + "}"


# Shared singletons.
Footprint.EMPTY = Footprint()
Footprint.UNIVERSAL = Footprint(universal=True)


def touched_since(system: ArchSystem, epoch: int, structure_epoch: int) -> Footprint:
    """The footprint of every element mutated after the given epochs.

    Derived from the system's change log (the incremental checker's
    dirty-scope machinery): property writes name their element exactly;
    a structural mutation — or a dirty log that no longer reaches back to
    ``epoch`` — yields :attr:`Footprint.UNIVERSAL` because scope lists
    themselves may have moved.
    """
    if system.structure_epoch != structure_epoch:
        return Footprint.UNIVERSAL
    dirty = system.dirty_elements_since(epoch)
    if dirty is None:
        return Footprint.UNIVERSAL
    return Footprint.of(element.qualified_name for element in dirty)

"""Repair history: records and derived statistics.

The experiment harness mines this for the paper's §5 observations: the
~30 s mean repair duration, when spare servers were activated, and the
client-move oscillation during the stress phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.repair.context import RuntimeIntent
from repro.repair.footprint import Footprint

__all__ = ["RepairRecord", "RepairHistory"]


@dataclass
class RepairRecord:
    """One repair attempt, committed or aborted."""

    started: float
    strategy: str
    invariant: str = ""
    scope: Optional[str] = None
    ended: Optional[float] = None
    committed: bool = False
    tactic_applied: Optional[str] = None
    tactics_tried: List[str] = field(default_factory=list)
    abort_reason: Optional[str] = None
    intents: List[RuntimeIntent] = field(default_factory=list)
    #: elements the repair wrote (serial engine: the transaction's
    #: touched set; disjoint engine: additionally unioned with the
    #: triggering invariant's read scope, as used for conflict checks)
    footprint: Optional[Footprint] = None
    #: (tactic name, touched elements) per applied tactic
    tactic_footprints: List[Tuple[str, Footprint]] = field(default_factory=list)
    #: 1-based attempt number under the engine's RetryPolicy (1 = first try)
    attempt: int = 1
    #: backoff delay scheduled after this attempt failed (None = no retry)
    retry_backoff: Optional[float] = None
    #: True when the attempt was aborted by the repair timeout deadline
    timed_out: bool = False

    @property
    def duration(self) -> Optional[float]:
        if self.ended is None:
            return None
        return self.ended - self.started

    def as_dict(self) -> Dict[str, object]:
        """A JSON-ready view (the ``/repair-history`` endpoint's shape).

        Footprints are summarized as sorted element names; intents as
        ``{op, args}``.  Every value is strict-JSON serializable.
        """
        return {
            "started": self.started,
            "ended": self.ended,
            "duration": self.duration,
            "strategy": self.strategy,
            "invariant": self.invariant,
            "scope": self.scope,
            "committed": self.committed,
            "tactic_applied": self.tactic_applied,
            "tactics_tried": list(self.tactics_tried),
            "abort_reason": self.abort_reason,
            "intents": [
                {"op": intent.op, "args": dict(intent.args)}
                for intent in self.intents
            ],
            "footprint": (
                sorted(self.footprint.elements)
                if self.footprint is not None
                else None
            ),
            "attempt": self.attempt,
            "retry_backoff": self.retry_backoff,
            "timed_out": self.timed_out,
        }

    def __str__(self) -> str:
        state = (
            f"committed via {self.tactic_applied}"
            if self.committed else f"aborted ({self.abort_reason})"
        )
        dur = f" in {self.duration:.1f}s" if self.duration is not None else ""
        return f"[{self.started:8.1f}s] {self.strategy} @ {self.scope}: {state}{dur}"


class RepairHistory:
    """Append-only record list with summary statistics.

    ``capacity`` bounds memory for long-running/online runs: once full,
    appending evicts the oldest record (FIFO) and bumps ``evicted``.
    Default is unbounded, which keeps existing fingerprints untouched.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("history capacity must be >= 1 (or None)")
        self._records: List[RepairRecord] = []
        self.capacity = capacity
        self.evicted = 0

    def append(self, record: RepairRecord) -> None:
        self._records.append(record)
        if self.capacity is not None and len(self._records) > self.capacity:
            overflow = len(self._records) - self.capacity
            del self._records[:overflow]
            self.evicted += overflow

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    @property
    def records(self) -> List[RepairRecord]:
        return list(self._records)

    @property
    def committed(self) -> List[RepairRecord]:
        return [r for r in self._records if r.committed]

    @property
    def aborted(self) -> List[RepairRecord]:
        return [r for r in self._records if not r.committed]

    def mean_duration(self, committed_only: bool = True) -> float:
        pool = self.committed if committed_only else self._records
        durations = [r.duration for r in pool if r.duration is not None]
        return sum(durations) / len(durations) if durations else 0.0

    def tactic_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for r in self.committed:
            if r.tactic_applied:
                counts[r.tactic_applied] = counts.get(r.tactic_applied, 0) + 1
        return counts

    # -- intent mining -----------------------------------------------------------
    def intents_of(self, op: str) -> List[Tuple[float, RuntimeIntent]]:
        """(commit time, intent) pairs across committed repairs."""
        out: List[Tuple[float, RuntimeIntent]] = []
        for r in self.committed:
            for intent in r.intents:
                if intent.op == op:
                    out.append((r.started, intent))
        return out

    def client_moves(self) -> List[Tuple[float, str, str, str]]:
        """(time, client, from_group, to_group) across the run."""
        return [
            (t, i.args.get("client", "?"), i.args.get("frm", "?"),
             i.args.get("to", "?"))
            for t, i in self.intents_of("moveClient")
        ]

    def server_activations(self) -> List[Tuple[float, str, str]]:
        """(time, server, group) for every addServer-style recruitment."""
        return [
            (t, i.args.get("server", "?"), i.args.get("group", "?"))
            for t, i in self.intents_of("addServer")
        ]

    def oscillation_count(self, client: str) -> int:
        """Back-and-forth moves: returns to a group left earlier."""
        seen: List[str] = []
        count = 0
        for _, cli, frm, to in self.client_moves():
            if cli != client:
                continue
            if to in seen:
                count += 1
            seen.append(frm)
        return count

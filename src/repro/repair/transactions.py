"""Transactional editing of architectural models.

Implements Figure 5's ``commit repair`` / ``abort`` semantics: while a
transaction is active it records the undo closure of every model mutation
(see :meth:`repro.acme.system.ArchSystem.on_mutation`); ``abort`` replays
the undos in reverse; ``commit`` discards them.  **Savepoints** support
tactic-level rollback — a failing tactic must not leave half its edits in
the model while the strategy tries the next tactic.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.acme.system import ArchSystem
from repro.errors import TransactionError

__all__ = ["ModelTransaction"]


class ModelTransaction:
    """One active editing session against an :class:`ArchSystem`.

    Usage::

        txn = ModelTransaction(system)
        txn.begin()
        try:
            ... edit the model ...
            txn.commit()
        except SomethingWrong:
            txn.abort()
    """

    def __init__(self, system: ArchSystem):
        self.system = system
        self._undo: List[Callable[[], None]] = []
        self._active = False
        self._closed = False
        system.on_mutation(self._record)

    # NOTE: ArchSystem keeps the listener forever; a closed transaction just
    # ignores further events.  Transactions are created per repair, so the
    # listener list grows with repair count — bounded in practice (hundreds)
    # and O(1) per event.

    def _record(self, description: str, undo: Callable[[], None]) -> None:
        if self._active:
            self._undo.append(undo)

    def record(self, description: str, undo: Callable[[], None]) -> None:
        """Manually journal an undo (for edits the system cannot observe,
        e.g. inside a component's representation sub-architecture)."""
        self._require_active()
        self._undo.append(undo)

    # -- lifecycle ----------------------------------------------------------
    @property
    def active(self) -> bool:
        return self._active

    @property
    def recorded(self) -> int:
        return len(self._undo)

    def begin(self) -> "ModelTransaction":
        if self._closed:
            raise TransactionError("transaction already finished")
        if self._active:
            raise TransactionError("transaction already active")
        self._active = True
        return self

    def commit(self) -> int:
        """Keep all edits; returns how many mutations were recorded."""
        self._require_active()
        count = len(self._undo)
        self._undo.clear()
        self._active = False
        self._closed = True
        return count

    def abort(self) -> int:
        """Undo all edits in reverse order; returns how many were undone."""
        self._require_active()
        count = len(self._undo)
        self._rollback(0)
        self._active = False
        self._closed = True
        return count

    # -- savepoints ----------------------------------------------------------
    def mark(self) -> int:
        """Return a savepoint token (undo-stack depth)."""
        self._require_active()
        return len(self._undo)

    def rollback_to(self, mark: int) -> int:
        """Undo everything recorded after ``mark``; returns count undone."""
        self._require_active()
        if mark < 0 or mark > len(self._undo):
            raise TransactionError(f"invalid savepoint {mark}")
        count = len(self._undo) - mark
        self._rollback(mark)
        return count

    def _rollback(self, upto: int) -> None:
        # Undo closures themselves trigger mutations; suspend recording.
        self._active = False
        try:
            while len(self._undo) > upto:
                self._undo.pop()()
        finally:
            if not self._closed:
                self._active = True

    def _require_active(self) -> None:
        if not self._active:
            raise TransactionError("no active transaction")

"""Transactional editing of architectural models.

Implements Figure 5's ``commit repair`` / ``abort`` semantics: while a
transaction is active it records the undo closure of every model mutation
(see :meth:`repro.acme.system.ArchSystem.on_mutation`); ``abort`` replays
the undos in reverse; ``commit`` discards them.  **Savepoints** support
tactic-level rollback — a failing tactic must not leave half its edits in
the model while the strategy tries the next tactic.

A transaction also knows **which elements it touched**: :meth:`touched`
derives the write set from the system's change epochs (captured at
``begin``), which is what the concurrent repair engine uses as the
repair's write footprint (see :mod:`repro.repair.footprint`).
"""

from __future__ import annotations

from typing import Callable, List

from repro.acme.system import ArchSystem
from repro.errors import TransactionError
from repro.repair.footprint import Footprint, touched_since

__all__ = ["ModelTransaction"]


class ModelTransaction:
    """One active editing session against an :class:`ArchSystem`.

    Usage::

        txn = ModelTransaction(system)
        txn.begin()
        try:
            ... edit the model ...
            txn.commit()
        except SomethingWrong:
            txn.abort()
    """

    def __init__(self, system: ArchSystem):
        self.system = system
        self._undo: List[Callable[[], None]] = []
        self._active = False
        self._closed = False
        self._begin_epoch = system.epoch
        self._begin_structure_epoch = system.structure_epoch
        system.on_mutation(self._record)

    # The listener is removed again on commit/abort, so mutation dispatch
    # cost tracks *active* transactions (at most max_concurrent_repairs),
    # not every repair the run has ever made.

    def _record(self, description: str, undo: Callable[[], None]) -> None:
        if self._active:
            self._undo.append(undo)

    def record(self, description: str, undo: Callable[[], None]) -> None:
        """Manually journal an undo (for edits the system cannot observe,
        e.g. inside a component's representation sub-architecture)."""
        self._require_active()
        self._undo.append(undo)

    # -- lifecycle ----------------------------------------------------------
    @property
    def active(self) -> bool:
        return self._active

    @property
    def recorded(self) -> int:
        return len(self._undo)

    def begin(self) -> "ModelTransaction":
        if self._closed:
            raise TransactionError("transaction already finished")
        if self._active:
            raise TransactionError("transaction already active")
        self._active = True
        self._begin_epoch = self.system.epoch
        self._begin_structure_epoch = self.system.structure_epoch
        return self

    def touched(self) -> Footprint:
        """The elements mutated since ``begin`` (the write footprint).

        Property writes name their element exactly; structural mutations
        (or an overflowed change log) widen the answer to
        :attr:`~repro.repair.footprint.Footprint.UNIVERSAL`.  Valid while
        the transaction is active *and* after it closes — an aborted
        transaction's undos bump the epochs further, so callers needing
        the pre-abort write set must read it before aborting.
        """
        return touched_since(
            self.system, self._begin_epoch, self._begin_structure_epoch
        )

    def commit(self) -> int:
        """Keep all edits; returns how many mutations were recorded."""
        self._require_active()
        count = len(self._undo)
        self._undo.clear()
        self._active = False
        self._closed = True
        self.system.remove_mutation_listener(self._record)
        return count

    def abort(self) -> int:
        """Undo all edits in reverse order; returns how many were undone."""
        self._require_active()
        count = len(self._undo)
        self._rollback(0)
        self._active = False
        self._closed = True
        self.system.remove_mutation_listener(self._record)
        return count

    # -- savepoints ----------------------------------------------------------
    def mark(self) -> int:
        """Return a savepoint token (undo-stack depth)."""
        self._require_active()
        return len(self._undo)

    def rollback_to(self, mark: int) -> int:
        """Undo everything recorded after ``mark``; returns count undone."""
        self._require_active()
        if mark < 0 or mark > len(self._undo):
            raise TransactionError(f"invalid savepoint {mark}")
        count = len(self._undo) - mark
        self._rollback(mark)
        return count

    def _rollback(self, upto: int) -> None:
        # Undo closures themselves trigger mutations; suspend recording.
        self._active = False
        try:
            while len(self._undo) > upto:
                self._undo.pop()()
        finally:
            if not self._closed:
                self._active = True

    def _require_active(self) -> None:
        if not self._active:
            raise TransactionError("no active transaction")

"""The architecture manager: detects violations, runs repairs.

This is Figure 1's item (4): it "determines whether a system's runtime
behavior is within the envelope of acceptable ranges according to the
architecture... and if not, it can adapt the application using a repair
handler.  Repairs are propagated down to the running system."

Operational details mirroring the paper's experiment:

* repairs are serialized — one repair in flight at a time;
* after a repair finishes, a **settle time** elapses before constraints
  are re-evaluated ("the effects of a repair on a system will take time",
  §5.3), which bounds the repair rate and damps oscillation;
* the *first* violated constraint with a registered strategy is repaired
  ("our experiment simply chose to repair the first client that reported
  an error", §7) — or, with ``violation_policy="worst"``, the client
  "experiencing the worst latency first", the smarter selection the paper
  proposes as future work;
* committed model repairs hand their runtime intents to the translator,
  whose execution time (gauge redeployment, Remos queries, RMI calls) is
  the paper's ~30 s repair duration;
* when the same scope keeps violating and every repair attempt aborts,
  the engine raises a **human alert** trace event — the paper's §7 "it
  may be necessary to alert a human observer for manual intervention".
  Alert accounting is keyed *per repair scope* (consecutive-abort counts
  and ``human_alerts_by_scope``), so one noisy scope cannot mask
  another's trouble when several repairs interleave.

**Concurrency.**  ``concurrency="serial"`` (the default) is the paper's
exact scheduling, bit for bit.  ``concurrency="disjoint"`` lets multiple
repairs run at once when their footprints are provably disjoint (see
:mod:`repro.repair.footprint`):

* a violation is **admitted** only when its invariant's read scope
  overlaps no in-flight repair's footprint and no footprint still inside
  its own settle window (settle timers are per footprint, not global);
* after the strategy runs, its actual write set (from the transaction's
  touched elements) is re-checked against the other in-flight
  footprints; a late overlap **conflict-aborts** the repair at commit
  (``repair.conflict`` trace event, ``FootprintConflict`` abort reason)
  and rolls the model back — conflicts are scheduling artifacts, so they
  do not count toward human alerts.

**Resilient execution.**  With the fault plane able to make effectors
raise, no-op, or hang, the engine optionally runs repairs *two-phase*:
the model transaction stays open while the translator executes the
runtime intents, and only a successful completion commits it.  Any of
``repair_timeout``, ``retry_policy``, ``breaker_policy``, or
``quarantine_policy`` switches this on; with all four at their ``None``
defaults the original schedule is preserved bit for bit (commit before
translation, same trace events, same event times):

* ``repair_timeout`` — a sim-time deadline per attempt; expiry aborts
  the open transaction (undo log restores the model) and frees the
  repair slot, the only escape from a hung effector;
* ``retry_policy`` — a failed attempt (effector error or timeout) is
  re-tried after seeded exponential backoff, re-checking first that the
  violation still holds; each attempt is its own history record with
  ``attempt``/``retry_backoff`` recorded;
* ``breaker_policy`` — per-(tactic, scope) circuit breakers: K
  consecutive runtime failures open the breaker, making the tactic
  non-applicable on that scope so strategies fall through to their next
  tactic or abort into the human-alert escalation; a half-open probe
  after the reset timeout closes it again on success;
* ``quarantine_policy`` — a scope whose repairs keep failing is skipped
  by evaluation for a growing period (graceful degradation instead of
  hot-looping) and re-admitted when the period lapses.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.acme.system import ArchSystem
from repro.constraints.invariants import ConstraintChecker, ConstraintResult
from repro.errors import RepairAborted, RepairError
from repro.repair.context import RepairContext, RuntimeView
from repro.repair.footprint import Footprint
from repro.repair.history import RepairHistory, RepairRecord
from repro.repair.resilience import (
    BreakerPolicy,
    CircuitBreakerBank,
    QuarantinePolicy,
    RetryPolicy,
)
from repro.repair.strategy import RepairStrategy
from repro.repair.transactions import ModelTransaction
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace
from repro.util.rng import derive_rng

__all__ = ["ArchitectureManager", "RepairRecord"]


class _InflightRepair:
    """Bookkeeping for one admitted (not yet finished) concurrent repair."""

    __slots__ = ("record", "footprint")

    def __init__(self, record: RepairRecord, footprint: Footprint):
        self.record = record
        self.footprint = footprint


class ArchitectureManager:
    """Constraint evaluation + repair dispatch + repair lifecycle."""

    def __init__(
        self,
        sim: Simulator,
        system: ArchSystem,
        checker: ConstraintChecker,
        translator=None,
        runtime: Optional[RuntimeView] = None,
        operators: Optional[Dict[str, Callable[..., Any]]] = None,
        trace: Optional[Trace] = None,
        settle_time: float = 20.0,
        failed_repair_cost: float = 2.0,
        violation_policy: str = "first",
        alert_after_aborts: int = 5,
        concurrency: str = "serial",
        max_concurrent_repairs: int = 8,
        repair_timeout: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_policy: Optional[BreakerPolicy] = None,
        quarantine_policy: Optional[QuarantinePolicy] = None,
        history_capacity: Optional[int] = None,
    ):
        if violation_policy not in ("first", "worst"):
            raise RepairError(
                f"violation_policy must be 'first' or 'worst', "
                f"got {violation_policy!r}"
            )
        if concurrency not in ("serial", "disjoint"):
            raise RepairError(
                f"concurrency must be 'serial' or 'disjoint', "
                f"got {concurrency!r}"
            )
        if max_concurrent_repairs < 1:
            raise RepairError(
                f"max_concurrent_repairs must be >= 1, "
                f"got {max_concurrent_repairs}"
            )
        self.sim = sim
        self.system = system
        self.checker = checker
        self.translator = translator
        self.runtime = runtime
        self.operators = dict(operators or {})
        self.trace = trace if trace is not None else Trace()
        self.settle_time = float(settle_time)
        self.failed_repair_cost = float(failed_repair_cost)
        self.violation_policy = violation_policy
        self.alert_after_aborts = int(alert_after_aborts)
        self.concurrency = concurrency
        self.max_concurrent_repairs = int(max_concurrent_repairs)
        if repair_timeout is not None and repair_timeout <= 0:
            raise RepairError(
                f"repair_timeout must be positive, got {repair_timeout}"
            )
        if retry_policy is not None:
            retry_policy.validate()
        if quarantine_policy is not None:
            quarantine_policy.validate()
        self.repair_timeout = repair_timeout
        self.retry_policy = retry_policy
        self.quarantine_policy = quarantine_policy
        self.breakers: Optional[CircuitBreakerBank] = (
            CircuitBreakerBank(breaker_policy, sim, trace=self.trace)
            if breaker_policy is not None else None
        )
        #: any resilience option switches commit to two-phase (commit
        #: only after the translator completes); all-None keeps the
        #: original commit-then-translate schedule bit for bit
        self._two_phase = (
            repair_timeout is not None
            or retry_policy is not None
            or breaker_policy is not None
            or quarantine_policy is not None
        )
        self._retry_rng = (
            derive_rng(retry_policy.seed, "repair.retry")
            if retry_policy is not None else None
        )

        self._strategies: Dict[str, RepairStrategy] = {}
        self._busy = False
        self._cooldown_until = -math.inf
        self._consecutive_aborts: Dict[str, int] = {}
        self.human_alerts = 0
        #: per-scope alert counts — scope-keyed so one noisy scope's
        #: aborts cannot mask another's (see module doc)
        self.human_alerts_by_scope: Dict[str, int] = {}
        self.history = RepairHistory(capacity=history_capacity)
        self.evaluations = 0
        self.timeouts = 0
        self.retries = 0
        self.effector_failures = 0
        self.quarantines = 0
        self.quarantine_skips = 0
        self._scope_failures: Dict[str, int] = {}
        self._quarantined: Dict[str, float] = {}
        self._quarantine_rounds: Dict[str, int] = {}

        # disjoint-mode state: in-flight repairs and settling footprints
        self._inflight: Dict[int, _InflightRepair] = {}
        self._settling: List[Tuple[float, Footprint]] = []
        self._next_token = 0
        self.conflicts = 0
        self.peak_inflight = 0

    # -- configuration ---------------------------------------------------------
    def register_strategy(self, strategy: RepairStrategy) -> None:
        if strategy.name in self._strategies:
            raise RepairError(f"strategy {strategy.name!r} already registered")
        self._strategies[strategy.name] = strategy

    @property
    def strategies(self) -> List[str]:
        return sorted(self._strategies)

    @property
    def busy(self) -> bool:
        """True while any repair is in flight (serial or concurrent)."""
        return self._busy or bool(self._inflight)

    @property
    def inflight(self) -> int:
        """Number of concurrently in-flight repairs (disjoint mode)."""
        return len(self._inflight)

    @property
    def constraint_stats(self) -> Dict[str, int]:
        """Checker counters: full vs incremental passes, scopes evaluated
        vs reused (the control-loop overhead ledger)."""
        return dict(self.checker.stats)

    def repair_stats(self) -> Dict[str, int]:
        """Scheduling counters for the repair engine itself."""
        stats = {
            "evaluations": self.evaluations,
            "conflicts": self.conflicts,
            "peak_inflight": self.peak_inflight,
            "human_alerts": self.human_alerts,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "effector_failures": self.effector_failures,
            "quarantines": self.quarantines,
            "quarantine_skips": self.quarantine_skips,
            "quarantined_now": len(self._quarantined),
            "history_evicted": self.history.evicted,
        }
        if self.breakers is not None:
            stats.update(self.breakers.stats())
        return stats

    def quarantined_scopes(self) -> Dict[str, float]:
        """Scopes currently quarantined → sim time their period lapses."""
        return dict(self._quarantined)

    # -- the adaptation loop entry point ------------------------------------------
    def evaluate(self, full: bool = False) -> Optional[RepairRecord]:
        """Check constraints; dispatch a repair for the first violation.

        Returns the started :class:`RepairRecord`, or None when the model
        is healthy, the manager is busy/settling, or no strategy applies.

        Constraint evaluation rides the checker's compiled-incremental
        fast path: gauge updates between evaluations dirty only the
        elements they touch, so the periodic check re-evaluates O(changed)
        scopes, not O(model).  ``full=True`` forces one full re-check
        (the escape hatch for out-of-band model surgery).

        In ``concurrency="disjoint"`` mode one call may admit *several*
        repairs (every violation whose footprint overlaps nothing in
        flight); the first record started is returned.
        """
        if self.concurrency == "disjoint":
            return self._evaluate_disjoint(full)
        if self._busy or self.sim.now < self._cooldown_until:
            return None
        self.evaluations += 1
        actionable = self._actionable(
            full, stop_after_first=self.violation_policy == "first"
        )
        if not actionable:
            return None
        chosen = actionable[0]
        if self.violation_policy == "worst":
            chosen = max(actionable, key=self._severity)
        invariant = self.checker.invariant(chosen.invariant)
        return self._start_repair(chosen, self._strategies[invariant.repair])

    def _actionable(
        self, full: bool, stop_after_first: bool
    ) -> List[ConstraintResult]:
        """Violations with a registered strategy, in checker order.

        Errors and unhandled violations are traced and skipped; with
        ``stop_after_first`` the scan stops at the first actionable one
        (the serial engine's ``violation_policy="first"`` short-circuit).
        """
        actionable: List[ConstraintResult] = []
        for result in self.checker.check_all(self.system, full=full):
            if not result.violated:
                continue
            if result.error is not None:
                self.trace.emit(
                    self.sim.now, "constraint.error",
                    invariant=result.invariant, scope=result.scope,
                    error=result.error,
                )
                continue
            if self._quarantined:
                scope_key = result.scope or ""
                until = self._quarantined.get(scope_key)
                if until is not None:
                    if self.sim.now < until:
                        self.quarantine_skips += 1
                        continue
                    del self._quarantined[scope_key]
            invariant = self.checker.invariant(result.invariant)
            if invariant.repair is None or invariant.repair not in self._strategies:
                self.trace.emit(
                    self.sim.now, "constraint.violation.unhandled",
                    invariant=result.invariant, scope=result.scope,
                )
                continue
            actionable.append(result)
            if stop_after_first:
                break
        return actionable

    @staticmethod
    def _severity(result: ConstraintResult) -> float:
        """How bad a violation is: the scope's latency signal when known.

        Implements the paper's §7 proposal of "fixing the client that is
        experiencing the worst latency first".  ``averageLatency`` is the
        client/server style's signal; styles without it (e.g. the
        multi-tenant pools) rank by their plain ``latency`` property.
        Violations with neither rank at zero (repaired only when nothing
        worse exists).
        """
        element = result.element
        if element is not None:
            for name in ("averageLatency", "latency"):
                if element.has_property(name):
                    value = element.get_property(name)
                    if isinstance(value, (int, float)):
                        return float(value)
        return 0.0

    # -- repair lifecycle ----------------------------------------------------------
    def _attempt(
        self,
        violation: ConstraintResult,
        strategy: RepairStrategy,
        attempt: int = 1,
    ):
        """Run one strategy inside a fresh transaction (both schedulers).

        Returns ``(record, txn, ctx, outcome)``; ``outcome`` is None when
        the strategy aborted (transaction already rolled back, abort
        traced and counted) — the caller owns mode-specific scheduling.
        """
        record = RepairRecord(
            started=self.sim.now,
            strategy=strategy.name,
            invariant=violation.invariant,
            scope=violation.scope,
            attempt=attempt,
        )
        self.trace.emit(
            self.sim.now, "repair.start",
            strategy=strategy.name, invariant=violation.invariant,
            scope=violation.scope,
        )
        txn = ModelTransaction(self.system).begin()
        bindings = dict(self.checker.bindings)
        bindings["__strategy_args__"] = [violation.element]
        ctx = RepairContext(
            self.system,
            runtime=self.runtime,
            bindings=bindings,
            functions={**self.checker.functions, **self.operators},
            transaction=txn,
        )
        ctx.breakers = self.breakers
        ctx.repair_scope = violation.scope or ""
        try:
            outcome = strategy.run(ctx)
        except RepairAborted as abort:
            txn.abort()
            record.abort_reason = abort.reason
            self.trace.emit(
                self.sim.now, "repair.abort",
                strategy=strategy.name, reason=abort.reason,
            )
            self._note_abort(violation)
            return record, txn, ctx, None
        except Exception:
            txn.abort()
            raise
        return record, txn, ctx, outcome

    def _commit(self, record, txn, ctx, outcome, violation, footprint) -> None:
        """Commit bookkeeping shared by both schedulers."""
        self._consecutive_aborts.pop(violation.scope or "", None)
        record.footprint = footprint
        record.tactic_footprints = list(ctx.tactic_footprints)
        txn.commit()
        record.committed = True
        record.tactic_applied = outcome.tactic_applied
        record.tactics_tried = list(outcome.tactics_tried)
        record.intents = list(ctx.intents)
        self.trace.emit(
            self.sim.now, "repair.committed",
            strategy=record.strategy, tactic=outcome.tactic_applied,
            intents=len(ctx.intents),
        )

    def _start_repair(
        self,
        violation: ConstraintResult,
        strategy: RepairStrategy,
        attempt: int = 1,
    ) -> RepairRecord:
        self._busy = True
        record, txn, ctx, outcome = self._attempt(
            violation, strategy, attempt=attempt
        )
        if outcome is None:
            # Strategy-stage abort: no tactic ran, so there is nothing to
            # retry — only the quarantine ledger advances (no-op when off).
            self._scope_failure(violation)
            self.sim.schedule(self.failed_repair_cost, self._finish, record)
            return record
        if not self._two_phase:
            self._commit(record, txn, ctx, outcome, violation, txn.touched())
            if self.translator is not None and ctx.intents:

                def done(error=None):
                    if error is not None:
                        self._translation_error(record, str(error))
                    self._finish(record)

                self.translator.execute(ctx.intents, on_done=done)
            else:
                self.sim.schedule(0.0, self._finish, record)
            return record

        # Two-phase: translate first, commit only on completion.  The
        # touched set must be read while the transaction is still open.
        footprint = txn.touched()
        state = {"settled": False}

        def translated(error=None):
            if state["settled"]:
                return
            state["settled"] = True
            if error is None:
                self._commit(record, txn, ctx, outcome, violation, footprint)
                self._repair_succeeded(violation, outcome)
                self._finish(record)
            else:
                self._runtime_failure(
                    record, txn, ctx, outcome, violation, strategy,
                    str(error), attempt,
                )

        self._arm_deadline(
            state, record, txn, ctx, outcome, violation, strategy, attempt
        )
        if self.translator is not None and ctx.intents:
            self.translator.execute(ctx.intents, on_done=translated)
        else:
            self.sim.schedule(0.0, translated)
        return record

    def _arm_deadline(
        self, state, record, txn, ctx, outcome, violation, strategy,
        attempt, token=None,
    ) -> None:
        """Schedule the per-attempt timeout (two-phase modes only)."""
        if self.repair_timeout is None:
            return

        def deadline():
            if state["settled"]:
                return
            state["settled"] = True
            record.timed_out = True
            self.timeouts += 1
            self.trace.emit(
                self.sim.now, "repair.timeout",
                strategy=strategy.name, scope=violation.scope,
                attempt=attempt,
            )
            self._runtime_failure(
                record, txn, ctx, outcome, violation, strategy,
                "Timeout", attempt, token=token,
            )

        self.sim.schedule(self.repair_timeout, deadline)

    def _translation_error(self, record: RepairRecord, reason: str) -> None:
        """A fault-wrapped translator failed after a one-phase commit.

        The model change is already committed, so the run continues with
        a model/runtime divergence the gauges must re-detect; the event
        is traced and counted so results show it happened.
        """
        self.effector_failures += 1
        self.trace.emit(
            self.sim.now, "repair.effector_failure",
            strategy=record.strategy, reason=reason,
        )

    def _repair_succeeded(self, violation: ConstraintResult, outcome) -> None:
        """Clear resilience ledgers after a fully-translated commit."""
        scope = violation.scope or ""
        self._scope_failures.pop(scope, None)
        self._quarantine_rounds.pop(scope, None)
        if self.breakers is not None and outcome.tactic_applied:
            self.breakers.record_success(outcome.tactic_applied, scope)

    def _runtime_failure(
        self, record, txn, ctx, outcome, violation, strategy, reason,
        attempt, token=None,
    ) -> None:
        """An applied repair failed at runtime (effector error or timeout).

        Aborts the open transaction (undo log restores the model), feeds
        the breaker and alert ledgers, then either schedules a retry
        (holding the serial slot / the concurrent footprint across the
        backoff) or concludes the repair with quarantine accounting.
        """
        txn.abort()
        record.abort_reason = reason
        record.tactic_applied = outcome.tactic_applied
        record.tactics_tried = list(outcome.tactics_tried)
        record.intents = list(ctx.intents)
        self.trace.emit(
            self.sim.now, "repair.abort",
            strategy=strategy.name, reason=reason,
        )
        self._note_abort(violation)
        scope = violation.scope or ""
        if self.breakers is not None and outcome.tactic_applied:
            self.breakers.record_failure(outcome.tactic_applied, scope)
        policy = self.retry_policy
        if policy is not None and attempt < policy.max_attempts:
            backoff = policy.backoff_for(attempt + 1, self._retry_rng)
            record.retry_backoff = backoff
            record.ended = self.sim.now
            self.retries += 1
            self.trace.emit(
                self.sim.now, "repair.retry",
                strategy=strategy.name, scope=violation.scope,
                attempt=attempt + 1, backoff=backoff,
            )
            self.history.append(record)
            if token is None:
                self.sim.schedule(
                    backoff, self._retry_serial, violation, strategy,
                    attempt + 1,
                )
            else:
                self.sim.schedule(
                    backoff, self._retry_concurrent, token, violation,
                    strategy, attempt + 1,
                )
            return
        self._scope_failure(violation)
        if token is None:
            self._finish(record)
        else:
            self._finish_concurrent(token)

    def _violation_still_active(
        self, violation: ConstraintResult
    ) -> Optional[ConstraintResult]:
        """Re-check one (invariant, scope) before a retry attempt runs."""
        for result in self.checker.check_all(self.system, full=True):
            if (
                result.violated
                and result.error is None
                and result.invariant == violation.invariant
                and result.scope == violation.scope
            ):
                return result
        return None

    def _retry_serial(
        self, violation: ConstraintResult, strategy: RepairStrategy,
        attempt: int,
    ) -> None:
        fresh = self._violation_still_active(violation)
        if fresh is None:
            self.trace.emit(
                self.sim.now, "repair.retry_skip",
                invariant=violation.invariant, scope=violation.scope,
            )
            self._busy = False
            return
        self._start_repair(fresh, strategy, attempt=attempt)

    def _retry_concurrent(
        self, token: int, violation: ConstraintResult,
        strategy: RepairStrategy, attempt: int,
    ) -> None:
        # Release the reserved footprint first; re-admission conflict
        # checks run against whatever is in flight *now*.
        self._inflight.pop(token, None)
        fresh = self._violation_still_active(violation)
        if fresh is None:
            self.trace.emit(
                self.sim.now, "repair.retry_skip",
                invariant=violation.invariant, scope=violation.scope,
            )
            return
        invariant = self.checker.invariant(fresh.invariant)
        read_scope = invariant.read_footprint(fresh.element)
        self._start_concurrent_repair(
            fresh, strategy, read_scope, attempt=attempt
        )

    def _scope_failure(self, violation: ConstraintResult) -> None:
        """Quarantine accounting for one concluded-failed repair."""
        policy = self.quarantine_policy
        if policy is None:
            return
        scope = violation.scope or ""
        count = self._scope_failures.get(scope, 0) + 1
        self._scope_failures[scope] = count
        if count >= policy.after_failures:
            rounds = self._quarantine_rounds.get(scope, 0)
            period = policy.period_for(rounds)
            self._quarantined[scope] = self.sim.now + period
            self._quarantine_rounds[scope] = rounds + 1
            self._scope_failures[scope] = 0
            self.quarantines += 1
            self.trace.emit(
                self.sim.now, "repair.quarantine",
                scope=scope, until=self.sim.now + period, round=rounds + 1,
            )

    # -- disjoint-concurrency scheduling ---------------------------------------
    def _evaluate_disjoint(self, full: bool = False) -> Optional[RepairRecord]:
        """Admit every actionable violation whose footprint is free.

        The admission rule: a violation may start repairing only when its
        invariant's read scope overlaps (a) no in-flight repair's
        footprint and (b) no footprint still inside its per-footprint
        settle window.  Violations that fail the rule stay pending — the
        next evaluation reconsiders them — so overlapping work degrades
        to the serial schedule instead of racing.
        """
        self._expire_settles()
        if len(self._inflight) >= self.max_concurrent_repairs:
            return None
        self.evaluations += 1
        actionable = self._actionable(full, stop_after_first=False)
        if self.violation_policy == "worst":
            actionable.sort(key=self._severity, reverse=True)
        started: Optional[RepairRecord] = None
        for violation in actionable:
            if len(self._inflight) >= self.max_concurrent_repairs:
                break
            invariant = self.checker.invariant(violation.invariant)
            read_scope = invariant.read_footprint(violation.element)
            if self._blocked(read_scope):
                continue
            record = self._start_concurrent_repair(
                violation, self._strategies[invariant.repair], read_scope
            )
            if started is None:
                started = record
        return started

    def _blocked(self, footprint: Footprint) -> bool:
        """True when ``footprint`` overlaps in-flight or settling work."""
        for entry in self._inflight.values():
            if footprint.overlaps(entry.footprint):
                return True
        return any(footprint.overlaps(fp) for _, fp in self._settling)

    def _expire_settles(self) -> None:
        now = self.sim.now
        if self._settling:
            self._settling = [
                (until, fp) for until, fp in self._settling if until > now
            ]

    def _start_concurrent_repair(
        self,
        violation: ConstraintResult,
        strategy: RepairStrategy,
        read_scope: Footprint,
        attempt: int = 1,
    ) -> RepairRecord:
        record, txn, ctx, outcome = self._attempt(
            violation, strategy, attempt=attempt
        )
        if outcome is None:
            self._scope_failure(violation)
            self._launch(record, read_scope, delay=self.failed_repair_cost)
            return record

        # The actual write set, read *before* any abort replays undos.
        footprint = read_scope.union(txn.touched())
        conflict = self._find_conflict(footprint)
        if conflict is not None:
            txn.abort()
            self.conflicts += 1
            record.abort_reason = "FootprintConflict"
            with_strategy, with_scope = conflict
            self.trace.emit(
                self.sim.now, "repair.conflict",
                strategy=strategy.name, scope=violation.scope,
                with_strategy=with_strategy, with_scope=with_scope,
            )
            self.trace.emit(
                self.sim.now, "repair.abort",
                strategy=strategy.name, reason="FootprintConflict",
            )
            # NOT _note_abort: a conflict is a scheduling artifact, not a
            # failed repair of this scope — it must not trip human alerts.
            self._launch(record, read_scope, delay=self.failed_repair_cost)
            return record

        if not self._two_phase:
            self._commit(record, txn, ctx, outcome, violation, footprint)
            token = self._launch(record, footprint)
            if self.translator is not None and ctx.intents:

                def done(error=None):
                    if error is not None:
                        self._translation_error(record, str(error))
                    self._finish_concurrent(token)

                self.translator.execute(ctx.intents, on_done=done)
            else:
                self.sim.schedule(0.0, self._finish_concurrent, token)
            return record

        # Two-phase: the footprint is reserved while the transaction
        # stays open; commit happens only when translation completes.
        token = self._launch(record, footprint)
        state = {"settled": False}

        def translated(error=None):
            if state["settled"]:
                return
            state["settled"] = True
            if error is None:
                self._commit(record, txn, ctx, outcome, violation, footprint)
                self._repair_succeeded(violation, outcome)
                self._finish_concurrent(token)
            else:
                self._runtime_failure(
                    record, txn, ctx, outcome, violation, strategy,
                    str(error), attempt, token=token,
                )

        self._arm_deadline(
            state, record, txn, ctx, outcome, violation, strategy, attempt,
            token=token,
        )
        if self.translator is not None and ctx.intents:
            self.translator.execute(ctx.intents, on_done=translated)
        else:
            self.sim.schedule(0.0, translated)
        return record

    def _find_conflict(self, footprint: Footprint):
        """Who a write set collides with: an in-flight repair, a footprint
        still settling, or nobody.

        Admission only checked the invariant's *read* scope; a strategy
        whose writes escaped that scope must not commit into an element
        another repair is still executing against — or one still inside a
        settle window, whose gauges are blind/stale by definition.
        Returns ``(strategy, scope)`` of the collision (``"settling"``
        marks a settle-window hit) or None.
        """
        for entry in self._inflight.values():
            if footprint.overlaps(entry.footprint):
                return entry.record.strategy, entry.record.scope
        for _, settling in self._settling:
            if footprint.overlaps(settling):
                return "settling", str(settling)
        return None

    def _launch(
        self,
        record: RepairRecord,
        footprint: Footprint,
        delay: Optional[float] = None,
    ) -> int:
        """Register an in-flight entry; schedule its finish when given a
        fixed ``delay`` (abort paths); committed repairs finish when their
        translator reports done."""
        self._next_token += 1
        token = self._next_token
        self._inflight[token] = _InflightRepair(record, footprint)
        self.peak_inflight = max(self.peak_inflight, len(self._inflight))
        if delay is not None:
            self.sim.schedule(delay, self._finish_concurrent, token)
        return token

    def _finish_concurrent(self, token: int) -> None:
        entry = self._inflight.pop(token)
        record = entry.record
        record.ended = self.sim.now
        self.history.append(record)
        if self.settle_time > 0:
            self._settling.append(
                (self.sim.now + self.settle_time, entry.footprint)
            )
        self.trace.emit(
            self.sim.now, "repair.end",
            strategy=record.strategy, committed=record.committed,
            duration=record.duration,
        )

    def _note_abort(self, violation: ConstraintResult) -> None:
        """Track repeated failures on one scope; alert a human when no
        repair improves the situation (paper §7).  Counting is keyed by
        repair scope so concurrent aborts on one scope never mask
        another scope's trouble."""
        key = violation.scope or ""
        count = self._consecutive_aborts.get(key, 0) + 1
        self._consecutive_aborts[key] = count
        if count == self.alert_after_aborts:
            self.human_alerts += 1
            self.human_alerts_by_scope[key] = (
                self.human_alerts_by_scope.get(key, 0) + 1
            )
            self.trace.emit(
                self.sim.now, "repair.human_alert",
                scope=violation.scope, invariant=violation.invariant,
                consecutive_aborts=count,
            )
            self._consecutive_aborts[key] = 0

    def _finish(self, record: RepairRecord) -> None:
        record.ended = self.sim.now
        self.history.append(record)
        self._busy = False
        self._cooldown_until = self.sim.now + self.settle_time
        self.trace.emit(
            self.sim.now, "repair.end",
            strategy=record.strategy, committed=record.committed,
            duration=record.duration,
        )

"""The architecture manager: detects violations, runs repairs.

This is Figure 1's item (4): it "determines whether a system's runtime
behavior is within the envelope of acceptable ranges according to the
architecture... and if not, it can adapt the application using a repair
handler.  Repairs are propagated down to the running system."

Operational details mirroring the paper's experiment:

* repairs are serialized — one repair in flight at a time;
* after a repair finishes, a **settle time** elapses before constraints
  are re-evaluated ("the effects of a repair on a system will take time",
  §5.3), which bounds the repair rate and damps oscillation;
* the *first* violated constraint with a registered strategy is repaired
  ("our experiment simply chose to repair the first client that reported
  an error", §7) — or, with ``violation_policy="worst"``, the client
  "experiencing the worst latency first", the smarter selection the paper
  proposes as future work;
* committed model repairs hand their runtime intents to the translator,
  whose execution time (gauge redeployment, Remos queries, RMI calls) is
  the paper's ~30 s repair duration;
* when the same scope keeps violating and every repair attempt aborts,
  the engine raises a **human alert** trace event — the paper's §7 "it
  may be necessary to alert a human observer for manual intervention".
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional

from repro.acme.system import ArchSystem
from repro.constraints.invariants import ConstraintChecker, ConstraintResult
from repro.errors import RepairAborted, RepairError
from repro.repair.context import RepairContext, RuntimeView
from repro.repair.history import RepairHistory, RepairRecord
from repro.repair.strategy import RepairStrategy
from repro.repair.transactions import ModelTransaction
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace

__all__ = ["ArchitectureManager", "RepairRecord"]


class ArchitectureManager:
    """Constraint evaluation + repair dispatch + repair lifecycle."""

    def __init__(
        self,
        sim: Simulator,
        system: ArchSystem,
        checker: ConstraintChecker,
        translator=None,
        runtime: Optional[RuntimeView] = None,
        operators: Optional[Dict[str, Callable[..., Any]]] = None,
        trace: Optional[Trace] = None,
        settle_time: float = 20.0,
        failed_repair_cost: float = 2.0,
        violation_policy: str = "first",
        alert_after_aborts: int = 5,
    ):
        if violation_policy not in ("first", "worst"):
            raise RepairError(
                f"violation_policy must be 'first' or 'worst', "
                f"got {violation_policy!r}"
            )
        self.sim = sim
        self.system = system
        self.checker = checker
        self.translator = translator
        self.runtime = runtime
        self.operators = dict(operators or {})
        self.trace = trace if trace is not None else Trace()
        self.settle_time = float(settle_time)
        self.failed_repair_cost = float(failed_repair_cost)
        self.violation_policy = violation_policy
        self.alert_after_aborts = int(alert_after_aborts)

        self._strategies: Dict[str, RepairStrategy] = {}
        self._busy = False
        self._cooldown_until = -math.inf
        self._consecutive_aborts: Dict[str, int] = {}
        self.human_alerts = 0
        self.history = RepairHistory()
        self.evaluations = 0

    # -- configuration ---------------------------------------------------------
    def register_strategy(self, strategy: RepairStrategy) -> None:
        if strategy.name in self._strategies:
            raise RepairError(f"strategy {strategy.name!r} already registered")
        self._strategies[strategy.name] = strategy

    @property
    def strategies(self) -> List[str]:
        return sorted(self._strategies)

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def constraint_stats(self) -> Dict[str, int]:
        """Checker counters: full vs incremental passes, scopes evaluated
        vs reused (the control-loop overhead ledger)."""
        return dict(self.checker.stats)

    # -- the adaptation loop entry point ------------------------------------------
    def evaluate(self, full: bool = False) -> Optional[RepairRecord]:
        """Check constraints; dispatch a repair for the first violation.

        Returns the started :class:`RepairRecord`, or None when the model
        is healthy, the manager is busy/settling, or no strategy applies.

        Constraint evaluation rides the checker's compiled-incremental
        fast path: gauge updates between evaluations dirty only the
        elements they touch, so the periodic check re-evaluates O(changed)
        scopes, not O(model).  ``full=True`` forces one full re-check
        (the escape hatch for out-of-band model surgery).
        """
        if self._busy or self.sim.now < self._cooldown_until:
            return None
        self.evaluations += 1
        actionable: List[ConstraintResult] = []
        for result in self.checker.check_all(self.system, full=full):
            if not result.violated:
                continue
            if result.error is not None:
                self.trace.emit(
                    self.sim.now, "constraint.error",
                    invariant=result.invariant, scope=result.scope,
                    error=result.error,
                )
                continue
            invariant = self.checker.invariant(result.invariant)
            if invariant.repair is None or invariant.repair not in self._strategies:
                self.trace.emit(
                    self.sim.now, "constraint.violation.unhandled",
                    invariant=result.invariant, scope=result.scope,
                )
                continue
            actionable.append(result)
            if self.violation_policy == "first":
                break
        if not actionable:
            return None
        chosen = actionable[0]
        if self.violation_policy == "worst":
            chosen = max(actionable, key=self._severity)
        invariant = self.checker.invariant(chosen.invariant)
        return self._start_repair(chosen, self._strategies[invariant.repair])

    @staticmethod
    def _severity(result: ConstraintResult) -> float:
        """How bad a violation is: the scope's averageLatency when known.

        Implements the paper's §7 proposal of "fixing the client that is
        experiencing the worst latency first"; violations without a
        latency property rank at zero (repaired only when nothing worse
        exists).
        """
        element = result.element
        if element is not None and element.has_property("averageLatency"):
            value = element.get_property("averageLatency")
            if isinstance(value, (int, float)):
                return float(value)
        return 0.0

    # -- repair lifecycle ----------------------------------------------------------
    def _start_repair(
        self, violation: ConstraintResult, strategy: RepairStrategy
    ) -> RepairRecord:
        self._busy = True
        record = RepairRecord(
            started=self.sim.now,
            strategy=strategy.name,
            invariant=violation.invariant,
            scope=violation.scope,
        )
        self.trace.emit(
            self.sim.now, "repair.start",
            strategy=strategy.name, invariant=violation.invariant,
            scope=violation.scope,
        )
        txn = ModelTransaction(self.system).begin()
        bindings = dict(self.checker.bindings)
        bindings["__strategy_args__"] = [violation.element]
        ctx = RepairContext(
            self.system,
            runtime=self.runtime,
            bindings=bindings,
            functions={**self.checker.functions, **self.operators},
            transaction=txn,
        )
        try:
            outcome = strategy.run(ctx)
        except RepairAborted as abort:
            txn.abort()
            record.abort_reason = abort.reason
            self.trace.emit(
                self.sim.now, "repair.abort",
                strategy=strategy.name, reason=abort.reason,
            )
            self._note_abort(violation)
            self.sim.schedule(self.failed_repair_cost, self._finish, record)
            return record
        except Exception:
            txn.abort()
            raise

        self._consecutive_aborts.pop(violation.scope or "", None)
        txn.commit()
        record.committed = True
        record.tactic_applied = outcome.tactic_applied
        record.tactics_tried = list(outcome.tactics_tried)
        record.intents = list(ctx.intents)
        self.trace.emit(
            self.sim.now, "repair.committed",
            strategy=strategy.name, tactic=outcome.tactic_applied,
            intents=len(ctx.intents),
        )
        if self.translator is not None and ctx.intents:
            self.translator.execute(
                ctx.intents, on_done=lambda: self._finish(record)
            )
        else:
            self.sim.schedule(0.0, self._finish, record)
        return record

    def _note_abort(self, violation: ConstraintResult) -> None:
        """Track repeated failures on one scope; alert a human when no
        repair improves the situation (paper §7)."""
        key = violation.scope or ""
        count = self._consecutive_aborts.get(key, 0) + 1
        self._consecutive_aborts[key] = count
        if count == self.alert_after_aborts:
            self.human_alerts += 1
            self.trace.emit(
                self.sim.now, "repair.human_alert",
                scope=violation.scope, invariant=violation.invariant,
                consecutive_aborts=count,
            )
            self._consecutive_aborts[key] = 0

    def _finish(self, record: RepairRecord) -> None:
        record.ended = self.sim.now
        self.history.append(record)
        self._busy = False
        self._cooldown_until = self.sim.now + self.settle_time
        self.trace.emit(
            self.sim.now, "repair.end",
            strategy=record.strategy, committed=record.committed,
            duration=record.duration,
        )

"""The architecture manager: detects violations, runs repairs.

This is Figure 1's item (4): it "determines whether a system's runtime
behavior is within the envelope of acceptable ranges according to the
architecture... and if not, it can adapt the application using a repair
handler.  Repairs are propagated down to the running system."

Operational details mirroring the paper's experiment:

* repairs are serialized — one repair in flight at a time;
* after a repair finishes, a **settle time** elapses before constraints
  are re-evaluated ("the effects of a repair on a system will take time",
  §5.3), which bounds the repair rate and damps oscillation;
* the *first* violated constraint with a registered strategy is repaired
  ("our experiment simply chose to repair the first client that reported
  an error", §7) — or, with ``violation_policy="worst"``, the client
  "experiencing the worst latency first", the smarter selection the paper
  proposes as future work;
* committed model repairs hand their runtime intents to the translator,
  whose execution time (gauge redeployment, Remos queries, RMI calls) is
  the paper's ~30 s repair duration;
* when the same scope keeps violating and every repair attempt aborts,
  the engine raises a **human alert** trace event — the paper's §7 "it
  may be necessary to alert a human observer for manual intervention".
  Alert accounting is keyed *per repair scope* (consecutive-abort counts
  and ``human_alerts_by_scope``), so one noisy scope cannot mask
  another's trouble when several repairs interleave.

**Concurrency.**  ``concurrency="serial"`` (the default) is the paper's
exact scheduling, bit for bit.  ``concurrency="disjoint"`` lets multiple
repairs run at once when their footprints are provably disjoint (see
:mod:`repro.repair.footprint`):

* a violation is **admitted** only when its invariant's read scope
  overlaps no in-flight repair's footprint and no footprint still inside
  its own settle window (settle timers are per footprint, not global);
* after the strategy runs, its actual write set (from the transaction's
  touched elements) is re-checked against the other in-flight
  footprints; a late overlap **conflict-aborts** the repair at commit
  (``repair.conflict`` trace event, ``FootprintConflict`` abort reason)
  and rolls the model back — conflicts are scheduling artifacts, so they
  do not count toward human alerts.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.acme.system import ArchSystem
from repro.constraints.invariants import ConstraintChecker, ConstraintResult
from repro.errors import RepairAborted, RepairError
from repro.repair.context import RepairContext, RuntimeView
from repro.repair.footprint import Footprint
from repro.repair.history import RepairHistory, RepairRecord
from repro.repair.strategy import RepairStrategy
from repro.repair.transactions import ModelTransaction
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace

__all__ = ["ArchitectureManager", "RepairRecord"]


class _InflightRepair:
    """Bookkeeping for one admitted (not yet finished) concurrent repair."""

    __slots__ = ("record", "footprint")

    def __init__(self, record: RepairRecord, footprint: Footprint):
        self.record = record
        self.footprint = footprint


class ArchitectureManager:
    """Constraint evaluation + repair dispatch + repair lifecycle."""

    def __init__(
        self,
        sim: Simulator,
        system: ArchSystem,
        checker: ConstraintChecker,
        translator=None,
        runtime: Optional[RuntimeView] = None,
        operators: Optional[Dict[str, Callable[..., Any]]] = None,
        trace: Optional[Trace] = None,
        settle_time: float = 20.0,
        failed_repair_cost: float = 2.0,
        violation_policy: str = "first",
        alert_after_aborts: int = 5,
        concurrency: str = "serial",
        max_concurrent_repairs: int = 8,
    ):
        if violation_policy not in ("first", "worst"):
            raise RepairError(
                f"violation_policy must be 'first' or 'worst', "
                f"got {violation_policy!r}"
            )
        if concurrency not in ("serial", "disjoint"):
            raise RepairError(
                f"concurrency must be 'serial' or 'disjoint', "
                f"got {concurrency!r}"
            )
        if max_concurrent_repairs < 1:
            raise RepairError(
                f"max_concurrent_repairs must be >= 1, "
                f"got {max_concurrent_repairs}"
            )
        self.sim = sim
        self.system = system
        self.checker = checker
        self.translator = translator
        self.runtime = runtime
        self.operators = dict(operators or {})
        self.trace = trace if trace is not None else Trace()
        self.settle_time = float(settle_time)
        self.failed_repair_cost = float(failed_repair_cost)
        self.violation_policy = violation_policy
        self.alert_after_aborts = int(alert_after_aborts)
        self.concurrency = concurrency
        self.max_concurrent_repairs = int(max_concurrent_repairs)

        self._strategies: Dict[str, RepairStrategy] = {}
        self._busy = False
        self._cooldown_until = -math.inf
        self._consecutive_aborts: Dict[str, int] = {}
        self.human_alerts = 0
        #: per-scope alert counts — scope-keyed so one noisy scope's
        #: aborts cannot mask another's (see module doc)
        self.human_alerts_by_scope: Dict[str, int] = {}
        self.history = RepairHistory()
        self.evaluations = 0

        # disjoint-mode state: in-flight repairs and settling footprints
        self._inflight: Dict[int, _InflightRepair] = {}
        self._settling: List[Tuple[float, Footprint]] = []
        self._next_token = 0
        self.conflicts = 0
        self.peak_inflight = 0

    # -- configuration ---------------------------------------------------------
    def register_strategy(self, strategy: RepairStrategy) -> None:
        if strategy.name in self._strategies:
            raise RepairError(f"strategy {strategy.name!r} already registered")
        self._strategies[strategy.name] = strategy

    @property
    def strategies(self) -> List[str]:
        return sorted(self._strategies)

    @property
    def busy(self) -> bool:
        """True while any repair is in flight (serial or concurrent)."""
        return self._busy or bool(self._inflight)

    @property
    def inflight(self) -> int:
        """Number of concurrently in-flight repairs (disjoint mode)."""
        return len(self._inflight)

    @property
    def constraint_stats(self) -> Dict[str, int]:
        """Checker counters: full vs incremental passes, scopes evaluated
        vs reused (the control-loop overhead ledger)."""
        return dict(self.checker.stats)

    def repair_stats(self) -> Dict[str, int]:
        """Scheduling counters for the repair engine itself."""
        return {
            "conflicts": self.conflicts,
            "peak_inflight": self.peak_inflight,
            "human_alerts": self.human_alerts,
        }

    # -- the adaptation loop entry point ------------------------------------------
    def evaluate(self, full: bool = False) -> Optional[RepairRecord]:
        """Check constraints; dispatch a repair for the first violation.

        Returns the started :class:`RepairRecord`, or None when the model
        is healthy, the manager is busy/settling, or no strategy applies.

        Constraint evaluation rides the checker's compiled-incremental
        fast path: gauge updates between evaluations dirty only the
        elements they touch, so the periodic check re-evaluates O(changed)
        scopes, not O(model).  ``full=True`` forces one full re-check
        (the escape hatch for out-of-band model surgery).

        In ``concurrency="disjoint"`` mode one call may admit *several*
        repairs (every violation whose footprint overlaps nothing in
        flight); the first record started is returned.
        """
        if self.concurrency == "disjoint":
            return self._evaluate_disjoint(full)
        if self._busy or self.sim.now < self._cooldown_until:
            return None
        self.evaluations += 1
        actionable = self._actionable(
            full, stop_after_first=self.violation_policy == "first"
        )
        if not actionable:
            return None
        chosen = actionable[0]
        if self.violation_policy == "worst":
            chosen = max(actionable, key=self._severity)
        invariant = self.checker.invariant(chosen.invariant)
        return self._start_repair(chosen, self._strategies[invariant.repair])

    def _actionable(
        self, full: bool, stop_after_first: bool
    ) -> List[ConstraintResult]:
        """Violations with a registered strategy, in checker order.

        Errors and unhandled violations are traced and skipped; with
        ``stop_after_first`` the scan stops at the first actionable one
        (the serial engine's ``violation_policy="first"`` short-circuit).
        """
        actionable: List[ConstraintResult] = []
        for result in self.checker.check_all(self.system, full=full):
            if not result.violated:
                continue
            if result.error is not None:
                self.trace.emit(
                    self.sim.now, "constraint.error",
                    invariant=result.invariant, scope=result.scope,
                    error=result.error,
                )
                continue
            invariant = self.checker.invariant(result.invariant)
            if invariant.repair is None or invariant.repair not in self._strategies:
                self.trace.emit(
                    self.sim.now, "constraint.violation.unhandled",
                    invariant=result.invariant, scope=result.scope,
                )
                continue
            actionable.append(result)
            if stop_after_first:
                break
        return actionable

    @staticmethod
    def _severity(result: ConstraintResult) -> float:
        """How bad a violation is: the scope's latency signal when known.

        Implements the paper's §7 proposal of "fixing the client that is
        experiencing the worst latency first".  ``averageLatency`` is the
        client/server style's signal; styles without it (e.g. the
        multi-tenant pools) rank by their plain ``latency`` property.
        Violations with neither rank at zero (repaired only when nothing
        worse exists).
        """
        element = result.element
        if element is not None:
            for name in ("averageLatency", "latency"):
                if element.has_property(name):
                    value = element.get_property(name)
                    if isinstance(value, (int, float)):
                        return float(value)
        return 0.0

    # -- repair lifecycle ----------------------------------------------------------
    def _attempt(self, violation: ConstraintResult, strategy: RepairStrategy):
        """Run one strategy inside a fresh transaction (both schedulers).

        Returns ``(record, txn, ctx, outcome)``; ``outcome`` is None when
        the strategy aborted (transaction already rolled back, abort
        traced and counted) — the caller owns mode-specific scheduling.
        """
        record = RepairRecord(
            started=self.sim.now,
            strategy=strategy.name,
            invariant=violation.invariant,
            scope=violation.scope,
        )
        self.trace.emit(
            self.sim.now, "repair.start",
            strategy=strategy.name, invariant=violation.invariant,
            scope=violation.scope,
        )
        txn = ModelTransaction(self.system).begin()
        bindings = dict(self.checker.bindings)
        bindings["__strategy_args__"] = [violation.element]
        ctx = RepairContext(
            self.system,
            runtime=self.runtime,
            bindings=bindings,
            functions={**self.checker.functions, **self.operators},
            transaction=txn,
        )
        try:
            outcome = strategy.run(ctx)
        except RepairAborted as abort:
            txn.abort()
            record.abort_reason = abort.reason
            self.trace.emit(
                self.sim.now, "repair.abort",
                strategy=strategy.name, reason=abort.reason,
            )
            self._note_abort(violation)
            return record, txn, ctx, None
        except Exception:
            txn.abort()
            raise
        return record, txn, ctx, outcome

    def _commit(self, record, txn, ctx, outcome, violation, footprint) -> None:
        """Commit bookkeeping shared by both schedulers."""
        self._consecutive_aborts.pop(violation.scope or "", None)
        record.footprint = footprint
        record.tactic_footprints = list(ctx.tactic_footprints)
        txn.commit()
        record.committed = True
        record.tactic_applied = outcome.tactic_applied
        record.tactics_tried = list(outcome.tactics_tried)
        record.intents = list(ctx.intents)
        self.trace.emit(
            self.sim.now, "repair.committed",
            strategy=record.strategy, tactic=outcome.tactic_applied,
            intents=len(ctx.intents),
        )

    def _start_repair(
        self, violation: ConstraintResult, strategy: RepairStrategy
    ) -> RepairRecord:
        self._busy = True
        record, txn, ctx, outcome = self._attempt(violation, strategy)
        if outcome is None:
            self.sim.schedule(self.failed_repair_cost, self._finish, record)
            return record
        self._commit(record, txn, ctx, outcome, violation, txn.touched())
        if self.translator is not None and ctx.intents:
            self.translator.execute(
                ctx.intents, on_done=lambda: self._finish(record)
            )
        else:
            self.sim.schedule(0.0, self._finish, record)
        return record

    # -- disjoint-concurrency scheduling ---------------------------------------
    def _evaluate_disjoint(self, full: bool = False) -> Optional[RepairRecord]:
        """Admit every actionable violation whose footprint is free.

        The admission rule: a violation may start repairing only when its
        invariant's read scope overlaps (a) no in-flight repair's
        footprint and (b) no footprint still inside its per-footprint
        settle window.  Violations that fail the rule stay pending — the
        next evaluation reconsiders them — so overlapping work degrades
        to the serial schedule instead of racing.
        """
        self._expire_settles()
        if len(self._inflight) >= self.max_concurrent_repairs:
            return None
        self.evaluations += 1
        actionable = self._actionable(full, stop_after_first=False)
        if self.violation_policy == "worst":
            actionable.sort(key=self._severity, reverse=True)
        started: Optional[RepairRecord] = None
        for violation in actionable:
            if len(self._inflight) >= self.max_concurrent_repairs:
                break
            invariant = self.checker.invariant(violation.invariant)
            read_scope = invariant.read_footprint(violation.element)
            if self._blocked(read_scope):
                continue
            record = self._start_concurrent_repair(
                violation, self._strategies[invariant.repair], read_scope
            )
            if started is None:
                started = record
        return started

    def _blocked(self, footprint: Footprint) -> bool:
        """True when ``footprint`` overlaps in-flight or settling work."""
        for entry in self._inflight.values():
            if footprint.overlaps(entry.footprint):
                return True
        return any(footprint.overlaps(fp) for _, fp in self._settling)

    def _expire_settles(self) -> None:
        now = self.sim.now
        if self._settling:
            self._settling = [
                (until, fp) for until, fp in self._settling if until > now
            ]

    def _start_concurrent_repair(
        self,
        violation: ConstraintResult,
        strategy: RepairStrategy,
        read_scope: Footprint,
    ) -> RepairRecord:
        record, txn, ctx, outcome = self._attempt(violation, strategy)
        if outcome is None:
            self._launch(record, read_scope, delay=self.failed_repair_cost)
            return record

        # The actual write set, read *before* any abort replays undos.
        footprint = read_scope.union(txn.touched())
        conflict = self._find_conflict(footprint)
        if conflict is not None:
            txn.abort()
            self.conflicts += 1
            record.abort_reason = "FootprintConflict"
            with_strategy, with_scope = conflict
            self.trace.emit(
                self.sim.now, "repair.conflict",
                strategy=strategy.name, scope=violation.scope,
                with_strategy=with_strategy, with_scope=with_scope,
            )
            self.trace.emit(
                self.sim.now, "repair.abort",
                strategy=strategy.name, reason="FootprintConflict",
            )
            # NOT _note_abort: a conflict is a scheduling artifact, not a
            # failed repair of this scope — it must not trip human alerts.
            self._launch(record, read_scope, delay=self.failed_repair_cost)
            return record

        self._commit(record, txn, ctx, outcome, violation, footprint)
        token = self._launch(record, footprint)
        if self.translator is not None and ctx.intents:
            self.translator.execute(
                ctx.intents,
                on_done=lambda: self._finish_concurrent(token),
            )
        else:
            self.sim.schedule(0.0, self._finish_concurrent, token)
        return record

    def _find_conflict(self, footprint: Footprint):
        """Who a write set collides with: an in-flight repair, a footprint
        still settling, or nobody.

        Admission only checked the invariant's *read* scope; a strategy
        whose writes escaped that scope must not commit into an element
        another repair is still executing against — or one still inside a
        settle window, whose gauges are blind/stale by definition.
        Returns ``(strategy, scope)`` of the collision (``"settling"``
        marks a settle-window hit) or None.
        """
        for entry in self._inflight.values():
            if footprint.overlaps(entry.footprint):
                return entry.record.strategy, entry.record.scope
        for _, settling in self._settling:
            if footprint.overlaps(settling):
                return "settling", str(settling)
        return None

    def _launch(
        self,
        record: RepairRecord,
        footprint: Footprint,
        delay: Optional[float] = None,
    ) -> int:
        """Register an in-flight entry; schedule its finish when given a
        fixed ``delay`` (abort paths); committed repairs finish when their
        translator reports done."""
        self._next_token += 1
        token = self._next_token
        self._inflight[token] = _InflightRepair(record, footprint)
        self.peak_inflight = max(self.peak_inflight, len(self._inflight))
        if delay is not None:
            self.sim.schedule(delay, self._finish_concurrent, token)
        return token

    def _finish_concurrent(self, token: int) -> None:
        entry = self._inflight.pop(token)
        record = entry.record
        record.ended = self.sim.now
        self.history.append(record)
        if self.settle_time > 0:
            self._settling.append(
                (self.sim.now + self.settle_time, entry.footprint)
            )
        self.trace.emit(
            self.sim.now, "repair.end",
            strategy=record.strategy, committed=record.committed,
            duration=record.duration,
        )

    def _note_abort(self, violation: ConstraintResult) -> None:
        """Track repeated failures on one scope; alert a human when no
        repair improves the situation (paper §7).  Counting is keyed by
        repair scope so concurrent aborts on one scope never mask
        another scope's trouble."""
        key = violation.scope or ""
        count = self._consecutive_aborts.get(key, 0) + 1
        self._consecutive_aborts[key] = count
        if count == self.alert_after_aborts:
            self.human_alerts += 1
            self.human_alerts_by_scope[key] = (
                self.human_alerts_by_scope.get(key, 0) + 1
            )
            self.trace.emit(
                self.sim.now, "repair.human_alert",
                scope=violation.scope, invariant=violation.invariant,
                consecutive_aborts=count,
            )
            self._consecutive_aborts[key] = 0

    def _finish(self, record: RepairRecord) -> None:
        record.ended = self.sim.now
        self.history.append(record)
        self._busy = False
        self._cooldown_until = self.sim.now + self.settle_time
        self.trace.emit(
            self.sim.now, "repair.end",
            strategy=record.strategy, committed=record.committed,
            duration=record.duration,
        )

"""Cross-shard repair coordination over per-shard repair engines.

Each shard runs its own :class:`ArchitectureManager` against its own
slice of the model, so shard-local repairs proceed with **zero**
coordination — the common case, and the whole point of sharding.  The
:class:`ShardCoordinator` exists for the rest:

* it presents the *aggregate* manager surface the runtime and the
  metrics samplers expect (``busy`` / ``inflight`` / ``evaluations`` /
  ``repair_stats()`` / merged ``history``), summing or merging over the
  per-shard engines; and
* it runs cross-shard repairs through a two-phase, footprint-locked
  path reusing the same undo-log transactions the engines use.

Admission reuses PR 4's :class:`~repro.repair.footprint.Footprint` as
the lock key: :meth:`submit_cross` maps the declared footprint onto the
shards that own its elements, refuses admission while any of them is
busy or locked (a *conflict abort*, counted, never blocking), then
opens one :class:`~repro.repair.transactions.ModelTransaction` per
shard, applies the mutation, and verifies the write set stayed inside
the declared shard set — an escaped write aborts **all** shard
transactions in reverse order, restoring every slice.  Committed or
aborted, the affected shards stay locked until ``settle_time`` elapses,
deferring their local evaluation loops exactly like the disjoint
engine's settling windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.repair.engine import ArchitectureManager
from repro.repair.footprint import Footprint
from repro.repair.history import RepairHistory, RepairRecord
from repro.repair.transactions import ModelTransaction
from repro.sim.kernel import Simulator

__all__ = ["ShardCoordinator", "CrossRepairOutcome"]


@dataclass(frozen=True)
class CrossRepairOutcome:
    """Result of one cross-shard submission."""

    committed: bool
    shards: Tuple[int, ...]
    reason: Optional[str] = None


class _ShardEvaluator:
    """Single-shard facade handed to that shard's property updater."""

    def __init__(self, coordinator: "ShardCoordinator", shard: int):
        self._coordinator = coordinator
        self._shard = shard

    def evaluate(self, full: bool = False) -> Optional[RepairRecord]:
        return self._coordinator.evaluate_shard(self._shard, full=full)


class ShardCoordinator:
    """Aggregate view + cross-shard two-phase commit over shard engines.

    ``model`` is the :class:`~repro.acme.sharding.ShardedArchSystem`
    whose per-shard systems the ``managers`` operate on (index-aligned).
    ``max_lock_shards`` caps how many shards one cross-shard repair may
    lock (0 = unlimited); ``settle_time`` is how long affected shards
    stay locked after a cross-shard attempt, mirroring the engines' own
    settle windows.
    """

    def __init__(
        self,
        sim: Simulator,
        model,
        managers: List[ArchitectureManager],
        trace=None,
        settle_time: float = 20.0,
        max_lock_shards: int = 0,
    ):
        if not managers:
            raise ValueError("ShardCoordinator needs at least one manager")
        self.sim = sim
        self.model = model
        self.managers = list(managers)
        self.trace = trace
        self.settle_time = settle_time
        self.max_lock_shards = max_lock_shards
        #: shard index -> sim time its cross-shard lock expires
        self._locks: Dict[int, float] = {}
        self.cross_commits = 0
        self.cross_aborts = 0
        self.cross_rejects = 0
        #: shard evaluations skipped because the shard was lock-settling
        self.deferrals = 0
        #: peak *total* concurrent repairs across all shards
        self.peak_inflight = 0
        # per-shard engines have no breakers view at the rollup level
        self.breakers = None

    # -- aggregate manager surface -----------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self.managers)

    @property
    def busy(self) -> bool:
        if any(m.busy for m in self.managers):
            return True
        return bool(self._active_locks())

    @property
    def inflight(self) -> int:
        return sum(m.inflight for m in self.managers)

    @property
    def evaluations(self) -> int:
        return sum(m.evaluations for m in self.managers)

    @property
    def operators(self):
        return self.managers[0].operators

    @property
    def constraint_stats(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for manager in self.managers:
            for key, value in manager.constraint_stats.items():
                out[key] = out.get(key, 0) + value
        return out

    @property
    def history(self) -> RepairHistory:
        """Merged per-shard histories ordered by start time (stable)."""
        merged = RepairHistory()
        records: List[Tuple[float, int, int, RepairRecord]] = []
        for shard, manager in enumerate(self.managers):
            for idx, record in enumerate(manager.history):
                records.append((record.started, shard, idx, record))
        records.sort(key=lambda item: (item[0], item[1], item[2]))
        for _, _, _, record in records:
            merged.append(record)
        return merged

    def repair_stats(self) -> Dict[str, int]:
        """Key-wise rollup of the shard engines plus coordinator counters.

        ``peak_inflight`` is the coordinator-level peak (total repairs in
        flight at once across shards), not the sum of per-shard peaks —
        that is the number the throughput claim is about.
        """
        stats: Dict[str, int] = {}
        for manager in self.managers:
            for key, value in manager.repair_stats().items():
                if key == "peak_inflight":
                    continue
                stats[key] = stats.get(key, 0) + value
        stats["peak_inflight"] = self.peak_inflight
        stats["shards"] = len(self.managers)
        stats["cross_commits"] = self.cross_commits
        stats["cross_aborts"] = self.cross_aborts
        stats["cross_rejects"] = self.cross_rejects
        stats["deferrals"] = self.deferrals
        return stats

    def shard_proxy(self, shard: int) -> _ShardEvaluator:
        """The per-shard ``arch_manager`` handed to that shard's updater."""
        return _ShardEvaluator(self, shard)

    # -- evaluation --------------------------------------------------------
    def evaluate_shard(self, shard: int, full: bool = False):
        """Run one shard's local loop unless it is lock-settling."""
        if self._locked(shard):
            self.deferrals += 1
            return None
        record = self.managers[shard].evaluate(full=full)
        self._note_inflight()
        return record

    def evaluate(self, full: bool = False):
        """Sweep every shard's local loop; returns the first record."""
        first = None
        for shard in range(len(self.managers)):
            record = self.evaluate_shard(shard, full=full)
            if first is None:
                first = record
        return first

    def _note_inflight(self) -> None:
        now_inflight = sum(m.inflight or (1 if m.busy else 0) for m in self.managers)
        if now_inflight > self.peak_inflight:
            self.peak_inflight = now_inflight

    # -- cross-shard path --------------------------------------------------
    def _active_locks(self) -> List[int]:
        now = self.sim.now
        expired = [k for k, until in self._locks.items() if until <= now]
        for k in expired:
            del self._locks[k]
        return sorted(self._locks)

    def _locked(self, shard: int) -> bool:
        return shard in self._active_locks()

    def shards_of(self, footprint: Footprint) -> Tuple[int, ...]:
        """Shards a footprint's elements live on (universal -> all)."""
        if footprint.universal:
            return tuple(range(len(self.managers)))
        owners = self.model.shards_of_elements(footprint.elements)
        return tuple(sorted(owners))

    def submit_cross(
        self,
        footprint: Footprint,
        mutate: Callable[..., None],
        label: str = "cross",
    ) -> CrossRepairOutcome:
        """Run ``mutate(model)`` atomically across the footprint's shards.

        Phase 1 (admission): map the footprint to its shard set; reject —
        without blocking — if the set exceeds ``max_lock_shards``, any
        affected shard is already locked, or any affected engine is busy.
        Phase 2 (commit): lock the affected shards, open one transaction
        per shard (all shards, so escaped writes are caught *and*
        undoable), apply the mutation, and verify the write set stayed
        within the declared shard set.  Any escape or exception aborts
        every transaction in reverse shard order.  Locks persist for
        ``settle_time`` either way.
        """
        affected = self.shards_of(footprint)
        locked = set(self._active_locks())
        reason: Optional[str] = None
        if self.max_lock_shards and len(affected) > self.max_lock_shards:
            reason = (
                f"footprint spans {len(affected)} shards "
                f"(max_lock_shards={self.max_lock_shards})"
            )
        elif any(shard in locked for shard in affected):
            reason = "affected shard already lock-settling"
        elif any(self.managers[shard].busy for shard in affected):
            reason = "affected shard busy with local repairs"
        if reason is not None:
            self.cross_rejects += 1
            self._emit(
                "shard.cross.reject",
                label=label,
                shards=list(affected),
                reason=reason,
            )
            return CrossRepairOutcome(False, affected, reason)

        until = self.sim.now + self.settle_time
        for shard in affected:
            self._locks[shard] = until

        txns = [
            ModelTransaction(self.model.shard(k)).begin()
            for k in range(len(self.managers))
        ]
        try:
            mutate(self.model)
        except Exception as exc:  # noqa: BLE001 - repair code is user code
            for txn in reversed(txns):
                txn.abort()
            self.cross_aborts += 1
            self._emit(
                "shard.cross.abort",
                label=label,
                shards=list(affected),
                reason=f"exception: {exc}",
            )
            return CrossRepairOutcome(False, affected, f"exception: {exc}")

        # Read every write set *before* any abort: aborting bumps epochs.
        touched = [txn.touched() for txn in txns]
        escaped = [k for k, fp in enumerate(touched) if fp and k not in affected]
        if escaped:
            for txn in reversed(txns):
                txn.abort()
            self.cross_aborts += 1
            reason = f"write escaped declared footprint into shards {escaped}"
            self._emit(
                "shard.cross.abort",
                label=label,
                shards=list(affected),
                reason=reason,
            )
            return CrossRepairOutcome(False, affected, reason)

        for txn in txns:
            txn.commit()
        self.cross_commits += 1
        self._emit("shard.cross.commit", label=label, shards=list(affected))
        return CrossRepairOutcome(True, affected)

    def _emit(self, event: str, **data) -> None:
        if self.trace is not None:
            self.trace.emit(self.sim.now, event, **data)

"""Strategies: policies over sequences of tactics.

"To handle the situation where several tactics may be applicable, the
enclosing repair strategy decides on the policy for executing repair
tactics.  It might apply the first tactic that succeeds.  Alternatively,
it might sequence through all of the tactics." (§3.2)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.errors import RepairAborted
from repro.repair.context import RepairContext
from repro.repair.tactic import Tactic

__all__ = [
    "RepairOutcome",
    "RepairStrategy",
    "FirstSuccessStrategy",
    "AllApplicableStrategy",
    "PythonStrategy",
]


@dataclass
class RepairOutcome:
    """Result of running a strategy (before translation to the runtime)."""

    committed: bool
    strategy: str
    tactics_tried: List[str] = field(default_factory=list)
    tactic_applied: Optional[str] = None
    abort_reason: Optional[str] = None

    def __str__(self) -> str:
        if self.committed:
            return f"{self.strategy}: committed via {self.tactic_applied}"
        return f"{self.strategy}: aborted ({self.abort_reason})"


class RepairStrategy:
    """Interface: run against a context; raise RepairAborted to fail."""

    name: str = "strategy"

    def run(self, ctx: RepairContext) -> RepairOutcome:  # pragma: no cover
        raise NotImplementedError


class FirstSuccessStrategy(RepairStrategy):
    """Apply the first tactic that succeeds (the paper's default policy)."""

    def __init__(self, name: str, tactics: Sequence[Tactic],
                 abort_reason: str = "ModelError"):
        self.name = name
        self.tactics = list(tactics)
        self.abort_reason = abort_reason

    def run(self, ctx: RepairContext) -> RepairOutcome:
        outcome = RepairOutcome(False, self.name)
        for tactic in self.tactics:
            outcome.tactics_tried.append(tactic.name)
            if tactic.run(ctx):
                outcome.committed = True
                outcome.tactic_applied = tactic.name
                return outcome
        raise RepairAborted(self.abort_reason)


class AllApplicableStrategy(RepairStrategy):
    """Sequence through all tactics; commit if at least one applied."""

    def __init__(self, name: str, tactics: Sequence[Tactic],
                 abort_reason: str = "ModelError"):
        self.name = name
        self.tactics = list(tactics)
        self.abort_reason = abort_reason

    def run(self, ctx: RepairContext) -> RepairOutcome:
        outcome = RepairOutcome(False, self.name)
        applied: List[str] = []
        for tactic in self.tactics:
            outcome.tactics_tried.append(tactic.name)
            if tactic.run(ctx):
                applied.append(tactic.name)
        if not applied:
            raise RepairAborted(self.abort_reason)
        outcome.committed = True
        outcome.tactic_applied = "+".join(applied)
        return outcome


class PythonStrategy(RepairStrategy):
    """A strategy written as one Python callable returning an outcome."""

    def __init__(self, name: str, body: Callable[[RepairContext], RepairOutcome]):
        self.name = name
        self.body = body

    def run(self, ctx: RepairContext) -> RepairOutcome:
        return self.body(ctx)

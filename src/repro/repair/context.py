"""The execution context shared by tactics, operators, and the DSL.

A :class:`RepairContext` extends the constraint-language
:class:`~repro.constraints.evaluator.EvalContext` with:

* the in-flight :class:`~repro.repair.transactions.ModelTransaction`;
* a **runtime view** — read-only queries against the running system
  (``findServer``, inter-entity bandwidth), used by preconditions and by
  operators to resolve their targets before committing;
* a list of :class:`RuntimeIntent` records, the operations the translator
  must replay on the running system once the repair commits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.acme.system import ArchSystem
from repro.constraints.evaluator import EvalContext
from repro.repair.footprint import Footprint

__all__ = ["RuntimeIntent", "RuntimeView", "RepairContext"]


@dataclass(frozen=True)
class RuntimeIntent:
    """One deferred runtime operation, e.g. ``("moveClient", {...})``."""

    op: str
    args: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        args = ", ".join(f"{k}={v}" for k, v in sorted(self.args.items()))
        return f"{self.op}({args})"


class RuntimeView:
    """Read-only window onto the running system for repair-time queries.

    The default implementation wraps a :class:`GridApplication` and its
    environment manager; tests may substitute stubs.
    """

    def find_server(self, client_name: str, bw_thresh: float) -> Optional[str]:
        raise NotImplementedError

    def bandwidth_between(self, client_name: str, group_name: str) -> float:
        raise NotImplementedError

    def group_utilization(self, group_name: str) -> float:
        raise NotImplementedError

    def replication(self, group_name: str) -> int:
        raise NotImplementedError


class AppRuntimeView(RuntimeView):
    """RuntimeView over the simulated grid application."""

    def __init__(self, env_manager) -> None:
        self.env = env_manager

    def find_server(self, client_name: str, bw_thresh: float) -> Optional[str]:
        return self.env.find_server(client_name, bw_thresh)

    def bandwidth_between(self, client_name: str, group_name: str) -> float:
        return self.env.app.bandwidth_between(client_name, group_name)

    def group_utilization(self, group_name: str) -> float:
        return self.env.app.group(group_name).utilization()

    def replication(self, group_name: str) -> int:
        return self.env.app.group(group_name).replication


class RepairContext(EvalContext):
    """Evaluation context + transaction + runtime view + intents."""

    def __init__(
        self,
        system: ArchSystem,
        runtime: Optional[RuntimeView] = None,
        bindings: Optional[Dict[str, Any]] = None,
        functions: Optional[Dict[str, Callable[..., Any]]] = None,
        transaction=None,
    ):
        super().__init__(system, scope=None, bindings=bindings, functions=functions)
        self.runtime = runtime
        self.transaction = transaction
        #: engine-installed CircuitBreakerBank (None when breakers are off);
        #: consulted by Tactic.run so an open breaker reads as "not applicable"
        self.breakers = None
        #: scope of the violation this repair is serving (breaker key part)
        self.repair_scope: str = ""
        self.intents: List[RuntimeIntent] = []
        #: (tactic name, touched elements) per *applied* tactic, in
        #: application order — the per-tactic slice of the repair's write
        #: footprint (recorded by :meth:`repro.repair.tactic.Tactic.run`)
        self.tactic_footprints: List[Tuple[str, Footprint]] = []

    def intend(self, op: str, **args: Any) -> RuntimeIntent:
        """Record a runtime operation to execute after commit."""
        intent = RuntimeIntent(op, args)
        self.intents.append(intent)
        return intent

    def note_tactic_touch(self, tactic: str, footprint: Footprint) -> None:
        """Record the touched-element set of one applied tactic."""
        self.tactic_footprints.append((tactic, footprint))

    # -- savepoint integration (tactic-level rollback) ----------------------
    def mark(self) -> tuple:
        txn_mark = self.transaction.mark() if self.transaction is not None else 0
        return (txn_mark, len(self.intents), len(self.tactic_footprints))

    def rollback_to(self, mark: tuple) -> None:
        txn_mark, intents_len, footprints_len = mark
        if self.transaction is not None:
            self.transaction.rollback_to(txn_mark)
        del self.intents[intents_len:]
        del self.tactic_footprints[footprints_len:]

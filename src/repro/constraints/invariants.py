"""Invariants and the constraint checker.

An :class:`Invariant` pairs a name with a constraint expression and a
*scope*: either the whole system or an element type.  Type-scoped
invariants are evaluated once per element of that type with ``self`` bound
to the element — the paper's ``averageLatency <= maxLatency`` is scoped to
client roles, producing one violation per misbehaving client.

:class:`ConstraintChecker` evaluates a set of invariants and returns
structured results; the architecture manager reacts to violations by
dispatching the associated repair strategy (Figure 5 line 2).

The checker is **incremental** by default: expressions are compiled once
to closure trees (:mod:`repro.constraints.compile`), and results are
cached per (invariant, scope element) keyed on the system's change epoch
(:attr:`~repro.acme.system.ArchSystem.epoch`).  A periodic check after a
quiet interval reuses every cached result; after ``k`` property changes
it re-evaluates O(k) scopes instead of O(model):

* *scope-local* invariants (proven by
  :func:`~repro.constraints.compile.is_scope_local` to read only their
  scope element's properties and the global bindings) re-run only for
  scope elements whose :attr:`dirty_epoch` advanced;
* every other invariant — system-scoped, graph-reading, quantified —
  conservatively re-runs whenever *anything* changed;
* structural mutations, binding changes, a new/different system object,
  or an overflowed dirty log fall back to a full pass (as does the
  ``check_all(system, full=True)`` escape hatch).

The tree-walking interpreter remains available (``compiled=False``) as
the reference implementation, and ``incremental=False`` restores the
always-full behavior; ``tests/test_constraints_compile.py`` holds the
equivalence suite for both axes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.acme.elements import Element
from repro.acme.system import ArchSystem
from repro.constraints.ast import Node
from repro.constraints.compile import (
    CompiledExpression,
    compile_expression,
    is_scope_local,
)
from repro.constraints.evaluator import EvalContext, Evaluator
from repro.constraints.parser import parse_expression
from repro.constraints.stdlib import STDLIB
from repro.errors import ConstraintError, EvaluationError

__all__ = ["Invariant", "ConstraintResult", "ConstraintChecker"]


@dataclass(frozen=True)
class ConstraintResult:
    """Outcome of evaluating one invariant against one scope element."""

    invariant: str
    ok: bool
    scope: Optional[str] = None  # qualified element name; None = system scope
    element: Optional[Element] = None
    error: Optional[str] = None

    @property
    def violated(self) -> bool:
        return not self.ok

    def __str__(self) -> str:
        state = (
            "OK" if self.ok else ("ERROR: " + self.error if self.error else "VIOLATED")
        )
        where = f" @ {self.scope}" if self.scope else ""
        return f"[{self.invariant}{where}] {state}"


class Invariant:
    """One named constraint with an optional type scope.

    ``repair`` optionally names the repair strategy to trigger on violation
    (Figure 5's ``! -> fixLatency(r)``).
    """

    def __init__(
        self,
        name: str,
        expression: str,
        scope_type: Optional[str] = None,
        repair: Optional[str] = None,
    ):
        self.name = name
        self.source = expression
        self.scope_type = scope_type
        self.repair = repair
        try:
            self.ast: Node = parse_expression(expression)
        except Exception as exc:
            raise ConstraintError(f"invariant {name!r} does not parse: {exc}") from exc
        #: True when the expression provably reads only its scope
        #: element + bindings (the incremental checker's fast lane)
        self.scope_local: bool = is_scope_local(self.ast)

    def read_footprint(self, scope: Optional[Element]):
        """What re-checking this invariant for ``scope`` may read.

        A scope-local, type-scoped invariant reads exactly its scope
        element; everything else (system-scoped, quantified, graph-reading)
        conservatively reads the whole model.  Returns a
        :class:`~repro.repair.footprint.Footprint`; the concurrent repair
        engine unions this with a candidate repair's write set to decide
        admission and conflicts.
        """
        from repro.repair.footprint import Footprint

        if self.scope_local and self.scope_type is not None and scope is not None:
            return Footprint.of((scope.qualified_name,))
        return Footprint.UNIVERSAL

    def _scopes(self, system: ArchSystem) -> List[Optional[Element]]:
        if self.scope_type is None:
            return [None]
        scopes: List[Element] = []
        for comp in system.components:
            if comp.declares_type(self.scope_type):
                scopes.append(comp)
            for port in comp.ports:
                if port.declares_type(self.scope_type):
                    scopes.append(port)
        for conn in system.connectors:
            if conn.declares_type(self.scope_type):
                scopes.append(conn)
            for role in conn.roles:
                if role.declares_type(self.scope_type):
                    scopes.append(role)
        return scopes or []

    def check(
        self,
        system: ArchSystem,
        bindings: Optional[Dict[str, Any]] = None,
        functions: Optional[Dict[str, Callable[..., Any]]] = None,
    ) -> List[ConstraintResult]:
        """Evaluate over every scope element; one result per scope.

        This is the reference (tree-walking, always-full) path; the
        checker's :meth:`ConstraintChecker.check_all` adds compilation
        and incremental reuse on top of identical semantics.
        """
        results: List[ConstraintResult] = []
        evaluator = Evaluator()
        for scope in self._scopes(system):
            ctx = EvalContext(system, scope=scope, bindings=bindings,
                              functions=functions)
            scope_name = scope.qualified_name if scope is not None else None
            try:
                value = evaluator.evaluate(self.ast, ctx)
            except EvaluationError as exc:
                results.append(
                    ConstraintResult(self.name, False, scope_name, scope, str(exc))
                )
                continue
            if not isinstance(value, bool):
                results.append(
                    ConstraintResult(
                        self.name, False, scope_name, scope,
                        f"invariant must be boolean, got {value!r}",
                    )
                )
                continue
            results.append(ConstraintResult(self.name, value, scope_name, scope))
        return results


#: result-cache key: (invariant name, scope element or None)
_Key = Tuple[str, Optional[Element]]


class _CheckSession:
    """Cached state of the last check against one system object."""

    __slots__ = (
        "system", "epoch", "structure_epoch", "bindings", "functions",
        "order", "results", "scope_index", "global_keys",
    )

    def __init__(self, system: ArchSystem):
        self.system = system
        self.epoch = 0
        self.structure_epoch = 0
        self.bindings: Dict[str, Any] = {}
        self.functions: Dict[str, Callable[..., Any]] = {}
        #: full-check output order (stable across incremental updates)
        self.order: List[_Key] = []
        self.results: Dict[_Key, ConstraintResult] = {}
        #: dirty element -> result keys to re-evaluate (scope-local lane)
        self.scope_index: Dict[Element, List[_Key]] = {}
        #: keys re-evaluated whenever anything changed (conservative lane)
        self.global_keys: List[_Key] = []


class ConstraintChecker:
    """Holds invariants + global bindings; evaluates them on demand.

    ``compiled``/``incremental`` select the fast path (both default on);
    ``check_all(system, full=True)`` forces one full re-evaluation
    without disabling the cache for later checks.
    """

    def __init__(
        self,
        bindings: Optional[Dict[str, Any]] = None,
        functions: Optional[Dict[str, Callable[..., Any]]] = None,
        compiled: bool = True,
        incremental: bool = True,
    ):
        self.bindings: Dict[str, Any] = dict(bindings or {})
        self.functions: Dict[str, Callable[..., Any]] = dict(functions or {})
        self.compiled = bool(compiled)
        self.incremental = bool(incremental)
        self._invariants: Dict[str, Invariant] = {}
        self._programs: Dict[str, CompiledExpression] = {}
        self._program_table: Optional[Dict[str, Callable[..., Any]]] = None
        self._session: Optional[_CheckSession] = None
        self.stats: Dict[str, int] = {
            "full_checks": 0,
            "incremental_checks": 0,
            "scopes_evaluated": 0,
            "scopes_reused": 0,
        }

    def add(self, invariant: Invariant) -> Invariant:
        if invariant.name in self._invariants:
            raise ConstraintError(f"duplicate invariant {invariant.name!r}")
        self._invariants[invariant.name] = invariant
        self._session = None
        self._programs.pop(invariant.name, None)
        return invariant

    def add_source(
        self,
        name: str,
        expression: str,
        scope_type: Optional[str] = None,
        repair: Optional[str] = None,
    ) -> Invariant:
        return self.add(Invariant(name, expression, scope_type, repair))

    def invariant(self, name: str) -> Invariant:
        try:
            return self._invariants[name]
        except KeyError:
            raise ConstraintError(f"no invariant {name!r}") from None

    @property
    def invariants(self) -> List[Invariant]:
        return [self._invariants[k] for k in sorted(self._invariants)]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def check_all(
        self, system: ArchSystem, full: bool = False
    ) -> List[ConstraintResult]:
        """Evaluate every invariant; identical results to the reference
        interpreter, but O(changed scopes) when the cache applies.

        ``full=True`` is the escape hatch: one unconditional full pass
        (the cache is rebuilt, so later calls stay incremental).
        """
        self._ensure_programs()
        sess = self._session
        if (
            full
            or not self.incremental
            or sess is None
            or sess.system is not system
            or sess.structure_epoch != system.structure_epoch
            or sess.bindings != self.bindings
            or sess.functions != self.functions
        ):
            return self._full_check(system)
        if sess.epoch != system.epoch:
            dirty = system.dirty_elements_since(sess.epoch)
            if dirty is None:
                return self._full_check(system)
            self._incremental_check(sess, system, dirty)
        else:
            self.stats["incremental_checks"] += 1
            self.stats["scopes_reused"] += len(sess.order)
        results = sess.results
        return [results[key] for key in sess.order]

    def violations(self, system: ArchSystem) -> List[ConstraintResult]:
        return [r for r in self.check_all(system) if r.violated]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _merged_functions(self) -> Dict[str, Callable[..., Any]]:
        merged = dict(STDLIB)
        merged.update(self.functions)
        return merged

    def _ensure_programs(self) -> None:
        """(Re)compile when first used or when the function table moved."""
        if not self.compiled:
            return
        if self._program_table != self.functions or not all(
            name in self._programs for name in self._invariants
        ):
            table = self._merged_functions()
            self._programs = {
                name: compile_expression(inv.ast, table)
                for name, inv in self._invariants.items()
            }
            self._program_table = dict(self.functions)
            self._session = None  # results may depend on the functions

    def _make_ctx(self, system: ArchSystem) -> EvalContext:
        return EvalContext(
            system, scope=None, bindings=self.bindings, functions=self.functions
        )

    def _eval_one(
        self,
        invariant: Invariant,
        scope: Optional[Element],
        ctx: EvalContext,
        evaluator: Optional[Evaluator],
    ) -> ConstraintResult:
        ctx.scope = scope
        scope_name = scope.qualified_name if scope is not None else None
        self.stats["scopes_evaluated"] += 1
        try:
            if evaluator is None:
                value = self._programs[invariant.name].evaluate(ctx)
            else:
                value = evaluator.evaluate(invariant.ast, ctx)
        except EvaluationError as exc:
            return ConstraintResult(invariant.name, False, scope_name, scope, str(exc))
        if not isinstance(value, bool):
            return ConstraintResult(
                invariant.name, False, scope_name, scope,
                f"invariant must be boolean, got {value!r}",
            )
        return ConstraintResult(invariant.name, value, scope_name, scope)

    def _full_check(self, system: ArchSystem) -> List[ConstraintResult]:
        self.stats["full_checks"] += 1
        # capture epochs *before* evaluating so mutations racing the check
        # (from exotic custom functions) surface as dirty next time
        sess = _CheckSession(system)
        sess.epoch = system.epoch
        sess.structure_epoch = system.structure_epoch
        sess.bindings = dict(self.bindings)
        sess.functions = dict(self.functions)
        ctx = self._make_ctx(system)
        evaluator = None if self.compiled else Evaluator()
        out: List[ConstraintResult] = []
        for inv in self.invariants:
            fast_lane = inv.scope_local and inv.scope_type is not None
            for scope in inv._scopes(system):
                key: _Key = (inv.name, scope)
                result = self._eval_one(inv, scope, ctx, evaluator)
                sess.order.append(key)
                sess.results[key] = result
                out.append(result)
                if fast_lane:
                    sess.scope_index.setdefault(scope, []).append(key)
                elif not inv.scope_local:
                    sess.global_keys.append(key)
                # scope-local + system-scoped: only bindings can move it,
                # and binding changes force a full pass anyway
        self._session = sess if self.incremental else None
        return out

    def _incremental_check(
        self, sess: _CheckSession, system: ArchSystem, dirty: List[Element]
    ) -> None:
        self.stats["incremental_checks"] += 1
        epoch = system.epoch
        redo: List[_Key] = []
        if dirty:
            redo.extend(sess.global_keys)
            scope_index = sess.scope_index
            for element in dirty:
                redo.extend(scope_index.get(element, ()))
        if redo:
            ctx = self._make_ctx(system)
            evaluator = None if self.compiled else Evaluator()
            results = sess.results
            for key in redo:
                results[key] = self._eval_one(
                    self._invariants[key[0]], key[1], ctx, evaluator
                )
        self.stats["scopes_reused"] += len(sess.order) - len(redo)
        sess.epoch = epoch

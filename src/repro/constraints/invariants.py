"""Invariants and the constraint checker.

An :class:`Invariant` pairs a name with a constraint expression and a
*scope*: either the whole system or an element type.  Type-scoped
invariants are evaluated once per element of that type with ``self`` bound
to the element — the paper's ``averageLatency <= maxLatency`` is scoped to
client roles, producing one violation per misbehaving client.

:class:`ConstraintChecker` evaluates a set of invariants and returns
structured results; the architecture manager reacts to violations by
dispatching the associated repair strategy (Figure 5 line 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.acme.elements import Element
from repro.acme.system import ArchSystem
from repro.constraints.ast import Node
from repro.constraints.evaluator import EvalContext, Evaluator
from repro.constraints.parser import parse_expression
from repro.errors import ConstraintError, EvaluationError

__all__ = ["Invariant", "ConstraintResult", "ConstraintChecker"]


@dataclass(frozen=True)
class ConstraintResult:
    """Outcome of evaluating one invariant against one scope element."""

    invariant: str
    ok: bool
    scope: Optional[str] = None  # qualified element name; None = system scope
    element: Optional[Element] = None
    error: Optional[str] = None

    @property
    def violated(self) -> bool:
        return not self.ok

    def __str__(self) -> str:
        state = "OK" if self.ok else ("ERROR: " + self.error if self.error else "VIOLATED")
        where = f" @ {self.scope}" if self.scope else ""
        return f"[{self.invariant}{where}] {state}"


class Invariant:
    """One named constraint with an optional type scope.

    ``repair`` optionally names the repair strategy to trigger on violation
    (Figure 5's ``! -> fixLatency(r)``).
    """

    def __init__(
        self,
        name: str,
        expression: str,
        scope_type: Optional[str] = None,
        repair: Optional[str] = None,
    ):
        self.name = name
        self.source = expression
        self.scope_type = scope_type
        self.repair = repair
        try:
            self.ast: Node = parse_expression(expression)
        except Exception as exc:
            raise ConstraintError(
                f"invariant {name!r} does not parse: {exc}"
            ) from exc

    def _scopes(self, system: ArchSystem) -> List[Optional[Element]]:
        if self.scope_type is None:
            return [None]
        scopes: List[Element] = []
        for comp in system.components:
            if comp.declares_type(self.scope_type):
                scopes.append(comp)
            for port in comp.ports:
                if port.declares_type(self.scope_type):
                    scopes.append(port)
        for conn in system.connectors:
            if conn.declares_type(self.scope_type):
                scopes.append(conn)
            for role in conn.roles:
                if role.declares_type(self.scope_type):
                    scopes.append(role)
        return scopes or []

    def check(
        self,
        system: ArchSystem,
        bindings: Optional[Dict[str, Any]] = None,
        functions: Optional[Dict[str, Callable[..., Any]]] = None,
    ) -> List[ConstraintResult]:
        """Evaluate over every scope element; one result per scope."""
        results: List[ConstraintResult] = []
        evaluator = Evaluator()
        for scope in self._scopes(system):
            ctx = EvalContext(system, scope=scope, bindings=bindings,
                              functions=functions)
            scope_name = scope.qualified_name if scope is not None else None
            try:
                value = evaluator.evaluate(self.ast, ctx)
            except EvaluationError as exc:
                results.append(
                    ConstraintResult(self.name, False, scope_name, scope, str(exc))
                )
                continue
            if not isinstance(value, bool):
                results.append(
                    ConstraintResult(
                        self.name, False, scope_name, scope,
                        f"invariant must be boolean, got {value!r}",
                    )
                )
                continue
            results.append(ConstraintResult(self.name, value, scope_name, scope))
        return results


class ConstraintChecker:
    """Holds invariants + global bindings; evaluates them on demand."""

    def __init__(
        self,
        bindings: Optional[Dict[str, Any]] = None,
        functions: Optional[Dict[str, Callable[..., Any]]] = None,
    ):
        self.bindings: Dict[str, Any] = dict(bindings or {})
        self.functions: Dict[str, Callable[..., Any]] = dict(functions or {})
        self._invariants: Dict[str, Invariant] = {}

    def add(self, invariant: Invariant) -> Invariant:
        if invariant.name in self._invariants:
            raise ConstraintError(f"duplicate invariant {invariant.name!r}")
        self._invariants[invariant.name] = invariant
        return invariant

    def add_source(
        self,
        name: str,
        expression: str,
        scope_type: Optional[str] = None,
        repair: Optional[str] = None,
    ) -> Invariant:
        return self.add(Invariant(name, expression, scope_type, repair))

    def invariant(self, name: str) -> Invariant:
        try:
            return self._invariants[name]
        except KeyError:
            raise ConstraintError(f"no invariant {name!r}") from None

    @property
    def invariants(self) -> List[Invariant]:
        return [self._invariants[k] for k in sorted(self._invariants)]

    def check_all(self, system: ArchSystem) -> List[ConstraintResult]:
        results: List[ConstraintResult] = []
        for inv in self.invariants:
            results.extend(inv.check(system, self.bindings, self.functions))
        return results

    def violations(self, system: ArchSystem) -> List[ConstraintResult]:
        return [r for r in self.check_all(system) if r.violated]

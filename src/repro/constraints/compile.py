"""One-time AST -> closure compiler for constraint expressions.

The tree-walking :class:`~repro.constraints.evaluator.Evaluator` re-walks
every invariant AST on every check: per node it pays a ``getattr`` method
dispatch, dict-driven operator selection, and local-scope frame searches.
For the control loop — which re-evaluates the same handful of invariant
shapes over hundreds of scope elements every period — that walk *is* the
hot path.

:func:`compile_expression` walks the AST **once** and emits a tree of
plain Python closures mirroring the interpreter exactly:

* **locals are positional** — quantifier/select variables resolve to a
  fixed index into a flat frame list instead of a reversed dict-frame
  scan;
* **property access is pre-bound** — the attribute name, its lowered
  built-in form, and the error suffix are captured at compile time, and
  declared properties read the underlying property dict directly;
* **calls are direct** — functions found in the table handed to
  :func:`compile_expression` are captured as plain callables (stdlib
  calls skip the per-call dict lookup); unknown names fall back to the
  context table at runtime so the error behavior matches the
  interpreter.

The interpreter remains the *reference implementation*: compiled
programs must produce identical values and raise identical
:class:`~repro.errors.EvaluationError`\\s (message for message) — the
equivalence suite in ``tests/test_constraints_compile.py`` enforces this
over randomized systems and expressions.

:func:`is_scope_local` is the static analysis behind incremental
checking (see :mod:`repro.constraints.invariants`): it proves that an
expression reads nothing but its scope element's own properties and
global bindings, which is what lets the checker skip re-evaluating an
invariant whose scope element has not changed.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.acme.elements import Component, Connector, Element, Port, Role
from repro.acme.system import ArchSystem
from repro.constraints.ast import (
    Binary,
    Call,
    Literal,
    Name,
    Node,
    PropertyAccess,
    Quantifier,
    Select,
    SetLiteral,
    Unary,
)
from repro.errors import EvaluationError

__all__ = ["CompiledExpression", "compile_expression", "is_scope_local"]

#: fn(ctx, frame) -> value; ``frame`` is the flat positional local stack.
CompiledFn = Callable[[Any, List[Any]], Any]

_COLLECTIONS = (list, tuple, set, frozenset)
_NUMERIC_OPS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "%": operator.mod,
}

#: attributes resolved structurally by ``_element_attr`` before declared
#: properties (lowered, as the interpreter compares them)
_BUILTIN_ATTRS = frozenset(
    ("components", "connectors", "attachments", "name", "type",
     "ports", "roles", "component", "connector")
)


class CompiledExpression:
    """A constraint expression lowered to a closure tree.

    ``scope_local`` records the :func:`is_scope_local` verdict so the
    incremental checker can decide dirtiness granularity without
    re-walking the AST.
    """

    __slots__ = ("ast", "scope_local", "_fn")

    def __init__(self, ast: Node, fn: CompiledFn, scope_local: bool):
        self.ast = ast
        self.scope_local = scope_local
        self._fn = fn

    def evaluate(self, ctx) -> Any:
        """Evaluate against an :class:`EvalContext`-compatible context."""
        return self._fn(ctx, [])


def compile_expression(
    node: Node, functions: Optional[Mapping[str, Callable[..., Any]]] = None
) -> CompiledExpression:
    """Compile ``node`` once; reuse the result across scopes and checks.

    ``functions`` pre-binds call targets: a call to a name present in the
    mapping captures that callable directly, so the compiled program must
    be evaluated with contexts whose function table agrees with it (the
    :class:`~repro.constraints.invariants.ConstraintChecker` recompiles
    whenever its table changes).
    """
    table: Optional[Dict[str, Callable[..., Any]]] = (
        dict(functions) if functions is not None else None
    )
    return CompiledExpression(node, _compile(node, (), table), is_scope_local(node))


# ---------------------------------------------------------------------------
# Scope locality
# ---------------------------------------------------------------------------

#: functions that read nothing from the system graph
_PURE_FUNCTIONS = frozenset(("abs", "sqrt"))


def is_scope_local(node: Node) -> bool:
    """True when the expression only reads the scope element + bindings.

    A sound under-approximation: bare names (scope properties, thresholds
    from the bindings), ``self``-rooted property access to *declared*
    properties, literals, operators, and pure numeric functions qualify;
    anything touching ``system``, structural attributes (ports, roles,
    attachments...), quantifier/select domains, or graph-reading stdlib
    functions disqualifies.  Non-local invariants are conservatively
    re-evaluated whenever anything in the model changed.
    """
    if isinstance(node, Literal):
        return True
    if isinstance(node, Name):
        return node.ident != "system"
    if isinstance(node, PropertyAccess):
        return (
            isinstance(node.obj, Name)
            and node.obj.ident == "self"
            and node.attr.lower()
            not in ("components", "connectors", "attachments",
                    "ports", "roles", "component", "connector")
        )
    if isinstance(node, Unary):
        return is_scope_local(node.operand)
    if isinstance(node, Binary):
        return is_scope_local(node.left) and is_scope_local(node.right)
    if isinstance(node, SetLiteral):
        return all(is_scope_local(item) for item in node.items)
    if isinstance(node, Call):
        if node.func not in _PURE_FUNCTIONS:
            return False
        receiver_ok = node.receiver is None or is_scope_local(node.receiver)
        return receiver_ok and all(is_scope_local(a) for a in node.args)
    # Quantifier / Select domains range over the model graph.
    return False


# ---------------------------------------------------------------------------
# Node compilers
# ---------------------------------------------------------------------------

def _compile(
    node: Node,
    locals_: Tuple[str, ...],
    functions: Optional[Dict[str, Callable[..., Any]]],
) -> CompiledFn:
    kind = type(node)
    if kind is Literal:
        return _compile_literal(node)
    if kind is Name:
        return _compile_name(node, locals_)
    if kind is PropertyAccess:
        return _compile_property_access(node, locals_, functions)
    if kind is Call:
        return _compile_call(node, locals_, functions)
    if kind is Unary:
        return _compile_unary(node, locals_, functions)
    if kind is Binary:
        return _compile_binary(node, locals_, functions)
    if kind is Quantifier:
        return _compile_quantifier(node, locals_, functions)
    if kind is Select:
        return _compile_select(node, locals_, functions)
    if kind is SetLiteral:
        return _compile_set_literal(node, locals_, functions)
    return _compile_raiser(f"cannot evaluate node {kind.__name__}")


def _compile_raiser(message: str) -> CompiledFn:
    def run(ctx, frame):
        raise EvaluationError(message)

    return run


def _compile_literal(node: Literal) -> CompiledFn:
    value = node.value
    return lambda ctx, frame: value


def _compile_name(node: Name, locals_: Tuple[str, ...]) -> CompiledFn:
    ident = node.ident
    # Innermost quantifier binding wins; resolve to a frame slot now.
    for idx in range(len(locals_) - 1, -1, -1):
        if locals_[idx] == ident:
            return lambda ctx, frame, _i=idx: frame[_i]
    if ident == "self":
        return lambda ctx, frame: (ctx.scope if ctx.scope is not None else ctx.system)
    if ident == "system":
        return lambda ctx, frame: ctx.system
    message = f"unresolved name {ident!r} (line {node.line}, column {node.column})"

    def run(ctx, frame):
        scope = ctx.scope
        if scope is not None and scope.has_property(ident):
            return scope.get_property(ident)
        bindings = ctx.bindings
        if ident in bindings:
            return bindings[ident]
        raise EvaluationError(message)

    return run


def _compile_property_access(
    node: PropertyAccess,
    locals_: Tuple[str, ...],
    functions: Optional[Dict[str, Callable[..., Any]]],
) -> CompiledFn:
    objf = _compile(node.obj, locals_, functions)
    attr = node.attr
    lowered = attr.lower()
    suffix = f" (line {node.line}, column {node.column})"

    if lowered not in _BUILTIN_ATTRS:
        # Pure declared-property access: one dict probe on the fast path.
        def run(ctx, frame):
            obj = objf(ctx, frame)
            if isinstance(obj, Element):
                prop = obj._props.get(attr)
                if prop is not None:
                    return prop.value
                raise EvaluationError(
                    f"{obj.qualified_name} has no property {attr!r} "
                    f"(declared: {obj.property_names()}){suffix}"
                )
            if isinstance(obj, ArchSystem):
                raise EvaluationError(f"system has no attribute {attr!r}{suffix}")
            raise EvaluationError(
                f"cannot access {attr!r} on {type(obj).__name__}{suffix}"
            )

        return run

    def run(ctx, frame):
        obj = objf(ctx, frame)
        if isinstance(obj, ArchSystem):
            if lowered == "components":
                return list(obj.components)
            if lowered == "connectors":
                return list(obj.connectors)
            if lowered == "attachments":
                return list(obj.attachments)
            if lowered == "name":
                return obj.name
            raise EvaluationError(f"system has no attribute {attr!r}{suffix}")
        if isinstance(obj, Element):
            if lowered == "name":
                return obj.name
            if lowered == "type":
                return sorted(obj.types)
            if lowered == "ports" and isinstance(obj, Component):
                return list(obj.ports)
            if lowered == "roles" and isinstance(obj, Connector):
                return list(obj.roles)
            if lowered == "component" and isinstance(obj, Port):
                return obj.component
            if lowered == "connector" and isinstance(obj, Role):
                return obj.connector
            prop = obj._props.get(attr)
            if prop is not None:
                return prop.value
            raise EvaluationError(
                f"{obj.qualified_name} has no property {attr!r} "
                f"(declared: {obj.property_names()}){suffix}"
            )
        raise EvaluationError(
            f"cannot access {attr!r} on {type(obj).__name__}{suffix}"
        )

    return run


def _compile_call(
    node: Call,
    locals_: Tuple[str, ...],
    functions: Optional[Dict[str, Callable[..., Any]]],
) -> CompiledFn:
    name = node.func
    argfs = [_compile(a, locals_, functions) for a in node.args]
    recvf = (
        _compile(node.receiver, locals_, functions)
        if node.receiver is not None
        else None
    )
    prebound = functions.get(name) if functions is not None else None

    if prebound is not None:
        fn = prebound
        if recvf is not None:
            def run(ctx, frame):
                # interpreter order: arguments first, then the receiver
                args = [af(ctx, frame) for af in argfs]
                return fn(ctx, recvf(ctx, frame), *args)

            return run
        if not argfs:
            return lambda ctx, frame: fn(ctx)
        if len(argfs) == 1:
            a0 = argfs[0]
            return lambda ctx, frame: fn(ctx, a0(ctx, frame))
        if len(argfs) == 2:
            a0, a1 = argfs
            return lambda ctx, frame: fn(ctx, a0(ctx, frame), a1(ctx, frame))
        return lambda ctx, frame: fn(ctx, *[af(ctx, frame) for af in argfs])

    message = f"unknown function {name!r} (line {node.line}, column {node.column})"

    def run(ctx, frame):
        args = [af(ctx, frame) for af in argfs]
        if recvf is not None:
            args.insert(0, recvf(ctx, frame))
        fn = ctx.functions.get(name)
        if fn is None:
            raise EvaluationError(message)
        return fn(ctx, *args)

    return run


def _compile_unary(
    node: Unary,
    locals_: Tuple[str, ...],
    functions: Optional[Dict[str, Callable[..., Any]]],
) -> CompiledFn:
    operandf = _compile(node.operand, locals_, functions)
    if node.op == "!":
        suffix = f" (line {node.line}, column {node.column})"

        def run(ctx, frame):
            value = operandf(ctx, frame)
            if value is True:
                return False
            if value is False:
                return True
            raise EvaluationError(f"'!' requires a boolean, got {value!r}{suffix}")

        return run
    if node.op == "-":
        def run(ctx, frame):
            value = operandf(ctx, frame)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise EvaluationError(f"unary '-' requires a number, got {value!r}")
            return -value

        return run
    return _compile_raiser(f"unknown unary operator {node.op!r}")


def _compile_binary(
    node: Binary,
    locals_: Tuple[str, ...],
    functions: Optional[Dict[str, Callable[..., Any]]],
) -> CompiledFn:
    op = node.op
    leftf = _compile(node.left, locals_, functions)
    rightf = _compile(node.right, locals_, functions)
    suffix = f" (line {node.line}, column {node.column})"

    if op in ("and", "or", "->"):
        message = f"{op!r} requires a boolean, got {{}}{suffix}"
        if op == "and":
            def run(ctx, frame):
                left = leftf(ctx, frame)
                if left is False:
                    return False
                if left is not True:
                    raise EvaluationError(message.format(repr(left)))
                right = rightf(ctx, frame)
                if right is True or right is False:
                    return right
                raise EvaluationError(message.format(repr(right)))

            return run
        if op == "or":
            def run(ctx, frame):
                left = leftf(ctx, frame)
                if left is True:
                    return True
                if left is not False:
                    raise EvaluationError(message.format(repr(left)))
                right = rightf(ctx, frame)
                if right is True or right is False:
                    return right
                raise EvaluationError(message.format(repr(right)))

            return run

        def run(ctx, frame):
            left = leftf(ctx, frame)
            if left is False:
                return True
            if left is not True:
                raise EvaluationError(message.format(repr(left)))
            right = rightf(ctx, frame)
            if right is True or right is False:
                return right
            raise EvaluationError(message.format(repr(right)))

        return run

    if op == "==":
        return lambda ctx, frame: leftf(ctx, frame) == rightf(ctx, frame)
    if op == "!=":
        return lambda ctx, frame: leftf(ctx, frame) != rightf(ctx, frame)
    if op == "in":
        def run(ctx, frame):
            left = leftf(ctx, frame)
            right = rightf(ctx, frame)
            if not isinstance(right, _COLLECTIONS):
                raise EvaluationError("'in' requires a collection on the right")
            return left in right

        return run
    if op in _NUMERIC_OPS:
        apply = _NUMERIC_OPS[op]
        if op in ("<", "<=", ">", ">="):
            message = f"comparison {op!r} requires numbers, got {{}}{suffix}"
        else:
            message = f"arithmetic {op!r} requires numbers, got {{}}"
        zero_message = None
        if op == "/":
            zero_message = "division by zero"
        elif op == "%":
            zero_message = "modulo by zero"

        def run(ctx, frame):
            left = leftf(ctx, frame)
            right = rightf(ctx, frame)
            if isinstance(left, bool) or not isinstance(left, (int, float)):
                raise EvaluationError(message.format(repr(left)))
            if isinstance(right, bool) or not isinstance(right, (int, float)):
                raise EvaluationError(message.format(repr(right)))
            if zero_message is not None and right == 0:
                raise EvaluationError(zero_message)
            return apply(left, right)

        return run
    return _compile_raiser(f"unknown operator {op!r}")


def _compile_domain(
    node: Node,
    locals_: Tuple[str, ...],
    functions: Optional[Dict[str, Callable[..., Any]]],
) -> CompiledFn:
    """Domain evaluation + collection check + optional type filter."""
    domf = _compile(node.domain, locals_, functions)
    type_name = node.type_name
    message = (
        f"quantifier domain must be a collection "
        f"(line {node.line}, column {node.column}), got {{}}"
    )

    def run(ctx, frame):
        domain = domf(ctx, frame)
        if not isinstance(domain, _COLLECTIONS):
            raise EvaluationError(message.format(type(domain).__name__))
        items = list(domain)
        if type_name is not None:
            items = [
                x for x in items
                if isinstance(x, Element) and x.declares_type(type_name)
            ]
        return items

    return run


def _compile_quantifier(
    node: Quantifier,
    locals_: Tuple[str, ...],
    functions: Optional[Dict[str, Callable[..., Any]]],
) -> CompiledFn:
    domainf = _compile_domain(node, locals_, functions)
    bodyf = _compile(node.body, locals_ + (node.var,), functions)
    kind = node.kind
    message = (
        f"'{kind}' body requires a boolean, got {{}} "
        f"(line {node.line}, column {node.column})"
    )

    def run(ctx, frame):
        items = domainf(ctx, frame)
        matches = 0
        slot = len(frame)
        frame.append(None)
        try:
            for item in items:
                frame[slot] = item
                ok = bodyf(ctx, frame)
                if ok is not True and ok is not False:
                    raise EvaluationError(message.format(repr(ok)))
                if kind == "forall":
                    if not ok:
                        return False
                elif ok:
                    if kind == "exists":
                        return True
                    matches += 1  # exists_unique keeps counting
        finally:
            del frame[slot:]
        if kind == "forall":
            return True
        if kind == "exists":
            return False
        return matches == 1

    return run


def _compile_select(
    node: Select,
    locals_: Tuple[str, ...],
    functions: Optional[Dict[str, Callable[..., Any]]],
) -> CompiledFn:
    domainf = _compile_domain(node, locals_, functions)
    bodyf = _compile(node.body, locals_ + (node.var,), functions)
    one = node.one
    message = (
        f"'select' body requires a boolean, got {{}} "
        f"(line {node.line}, column {node.column})"
    )

    def run(ctx, frame):
        items = domainf(ctx, frame)
        out: List[Any] = []
        slot = len(frame)
        frame.append(None)
        try:
            for item in items:
                frame[slot] = item
                ok = bodyf(ctx, frame)
                if ok is not True and ok is not False:
                    raise EvaluationError(message.format(repr(ok)))
                if ok:
                    if one:
                        return item
                    out.append(item)
        finally:
            del frame[slot:]
        if one:
            return None
        return out

    return run


def _compile_set_literal(
    node: SetLiteral,
    locals_: Tuple[str, ...],
    functions: Optional[Dict[str, Callable[..., Any]]],
) -> CompiledFn:
    itemfs = [_compile(item, locals_, functions) for item in node.items]
    return lambda ctx, frame: [f(ctx, frame) for f in itemfs]

"""The Armani-style constraint language (substrate S8).

Architectural constraints are first-order predicates over the model graph
(§2): quantifiers (``forall``/``exists``/``select``), property access,
connectivity tests, and arithmetic.  The paper's headline constraint::

    invariant r : averageLatency <= maxLatency;

is written verbatim in this language, attached to client roles, and checked
by the architecture manager whenever gauges update the model.
"""

from repro.constraints.ast import (
    Binary,
    Call,
    Literal,
    Name,
    PropertyAccess,
    Quantifier,
    Select,
    SetLiteral,
    Unary,
)
from repro.constraints.parser import parse_expression
from repro.constraints.compile import (
    CompiledExpression,
    compile_expression,
    is_scope_local,
)
from repro.constraints.evaluator import Evaluator, EvalContext
from repro.constraints.stdlib import STDLIB
from repro.constraints.invariants import (
    ConstraintChecker,
    ConstraintResult,
    Invariant,
)

__all__ = [
    "Binary",
    "Call",
    "Literal",
    "Name",
    "PropertyAccess",
    "Quantifier",
    "Select",
    "SetLiteral",
    "Unary",
    "parse_expression",
    "CompiledExpression",
    "compile_expression",
    "is_scope_local",
    "Evaluator",
    "EvalContext",
    "STDLIB",
    "Invariant",
    "ConstraintResult",
    "ConstraintChecker",
]

"""AST node types for the constraint language (shared with the repair DSL)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

__all__ = [
    "Node",
    "Literal",
    "Name",
    "PropertyAccess",
    "Call",
    "Unary",
    "Binary",
    "Quantifier",
    "Select",
    "SetLiteral",
]


class Node:
    """Base class; nodes carry their source position for error reporting."""

    line: int = 0
    column: int = 0

    def at(self, line: int, column: int) -> "Node":
        self.line = line
        self.column = column
        return self


@dataclass
class Literal(Node):
    """Number, string, boolean, or nil."""

    value: Any


@dataclass
class Name(Node):
    """A bare identifier, resolved against the evaluation scope."""

    ident: str


@dataclass
class PropertyAccess(Node):
    """``obj.attr`` — element property or built-in attribute."""

    obj: Node
    attr: str


@dataclass
class Call(Node):
    """``fn(args...)`` or ``obj.method(args...)`` (receiver non-None)."""

    func: str
    args: List[Node] = field(default_factory=list)
    receiver: Optional[Node] = None


@dataclass
class Unary(Node):
    """``!x``, ``-x``."""

    op: str
    operand: Node


@dataclass
class Binary(Node):
    """Binary operation; op is one of
    ``or and == != < <= > >= + - * / -> in``."""

    op: str
    left: Node
    right: Node


@dataclass
class Quantifier(Node):
    """``forall|exists [unique] var [: Type] in domain | body``."""

    kind: str  # 'forall' | 'exists' | 'exists_unique'
    var: str
    type_name: Optional[str]
    domain: Node
    body: Node


@dataclass
class Select(Node):
    """``select [one] var [: Type] in domain | predicate``.

    Evaluates to the filtered list, or — with ``one`` — to the single
    matching element (nil if none; first match if several, mirroring the
    paper's "select one ... | ..." usage).
    """

    var: str
    type_name: Optional[str]
    domain: Node
    body: Node
    one: bool = False


@dataclass
class SetLiteral(Node):
    """``{e1, e2, ...}``."""

    items: List[Node] = field(default_factory=list)

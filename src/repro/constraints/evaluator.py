"""Tree-walking evaluator for constraint expressions.

Name resolution order for a bare identifier:

1. local quantifier/let variables (innermost scope first);
2. properties of the scope element (``self``), so an invariant attached to
   a role can say ``averageLatency`` instead of ``self.averageLatency``;
3. global bindings (task-layer thresholds like ``maxLatency``);
4. built-in functions (when used as a call target).

Property access on elements resolves built-in attributes first (``name``,
``type``, ``components``, ``ports``...), then declared properties.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.acme.elements import Component, Connector, Element, Port, Role
from repro.acme.system import ArchSystem
from repro.constraints.ast import (
    Binary,
    Call,
    Literal,
    Name,
    Node,
    PropertyAccess,
    Quantifier,
    Select,
    SetLiteral,
    Unary,
)
from repro.constraints.stdlib import STDLIB
from repro.errors import EvaluationError

__all__ = ["EvalContext", "Evaluator"]


class EvalContext:
    """One evaluation environment.

    ``scope`` is the element an invariant is attached to (bound as
    ``self`` unless the system itself is the scope); ``bindings`` are
    global named values; ``functions`` extend/override the stdlib —
    style operators are injected here by the repair engine.
    """

    def __init__(
        self,
        system: ArchSystem,
        scope: Optional[Element] = None,
        bindings: Optional[Dict[str, Any]] = None,
        functions: Optional[Dict[str, Callable[..., Any]]] = None,
    ):
        self.system = system
        self.scope = scope
        self.bindings = dict(bindings or {})
        self.functions: Dict[str, Callable[..., Any]] = dict(STDLIB)
        if functions:
            self.functions.update(functions)
        self._locals: List[Dict[str, Any]] = []

    # -- scope stack ---------------------------------------------------------
    def push(self, frame: Dict[str, Any]) -> None:
        self._locals.append(frame)

    def pop(self) -> None:
        self._locals.pop()

    def lookup(self, ident: str) -> Any:
        for frame in reversed(self._locals):
            if ident in frame:
                return frame[ident]
        if ident == "self":
            return self.scope if self.scope is not None else self.system
        if ident == "system":
            return self.system
        if self.scope is not None and self.scope.has_property(ident):
            return self.scope.get_property(ident)
        if ident in self.bindings:
            return self.bindings[ident]
        raise EvaluationError(f"unresolved name {ident!r}")

    def set_local(self, ident: str, value: Any) -> None:
        """Bind in the innermost frame (used by the repair DSL's ``let``)."""
        if not self._locals:
            self._locals.append({})
        self._locals[-1][ident] = value


def _truthy(value: Any, node: Node, what: str) -> bool:
    if not isinstance(value, bool):
        raise EvaluationError(
            f"{what} requires a boolean, got {value!r} "
            f"(line {node.line}, column {node.column})"
        )
    return value


def _element_attr(ctx: EvalContext, obj: Any, attr: str) -> Any:
    """Built-in attributes, then declared properties."""
    lowered = attr.lower()
    if isinstance(obj, ArchSystem):
        if lowered == "components":
            return list(obj.components)
        if lowered == "connectors":
            return list(obj.connectors)
        if lowered == "attachments":
            return list(obj.attachments)
        if lowered == "name":
            return obj.name
        raise EvaluationError(f"system has no attribute {attr!r}")
    if isinstance(obj, Element):
        if lowered == "name":
            return obj.name
        if lowered == "type":
            return sorted(obj.types)
        if isinstance(obj, Component) and lowered == "ports":
            return list(obj.ports)
        if isinstance(obj, Connector) and lowered == "roles":
            return list(obj.roles)
        if isinstance(obj, Port) and lowered == "component":
            return obj.component
        if isinstance(obj, Role) and lowered == "connector":
            return obj.connector
        if obj.has_property(attr):
            return obj.get_property(attr)
        raise EvaluationError(
            f"{obj.qualified_name} has no property {attr!r} "
            f"(declared: {obj.property_names()})"
        )
    raise EvaluationError(f"cannot access {attr!r} on {type(obj).__name__}")


def _filter_domain(ctx: EvalContext, items: Any, type_name: Optional[str], node: Node):
    seq = items
    if not isinstance(seq, (list, tuple, set, frozenset)):
        raise EvaluationError(
            f"quantifier domain must be a collection "
            f"(line {node.line}, column {node.column}), got {type(seq).__name__}"
        )
    out = list(seq)
    if type_name is not None:
        out = [x for x in out if isinstance(x, Element) and x.declares_type(type_name)]
    return out


class Evaluator:
    """Evaluates AST nodes within an :class:`EvalContext`."""

    def evaluate(self, node: Node, ctx: EvalContext) -> Any:
        method = getattr(self, f"_eval_{type(node).__name__.lower()}", None)
        if method is None:
            raise EvaluationError(f"cannot evaluate node {type(node).__name__}")
        return method(node, ctx)

    # -- leaves ------------------------------------------------------------------
    def _eval_literal(self, node: Literal, ctx: EvalContext) -> Any:
        return node.value

    def _eval_name(self, node: Name, ctx: EvalContext) -> Any:
        try:
            return ctx.lookup(node.ident)
        except EvaluationError as exc:
            raise EvaluationError(
                f"{exc} (line {node.line}, column {node.column})"
            ) from None

    def _eval_setliteral(self, node: SetLiteral, ctx: EvalContext) -> List[Any]:
        return [self.evaluate(item, ctx) for item in node.items]

    # -- access & calls --------------------------------------------------------------
    def _eval_propertyaccess(self, node: PropertyAccess, ctx: EvalContext) -> Any:
        obj = self.evaluate(node.obj, ctx)
        try:
            return _element_attr(ctx, obj, node.attr)
        except EvaluationError as exc:
            raise EvaluationError(
                f"{exc} (line {node.line}, column {node.column})"
            ) from None

    def _eval_call(self, node: Call, ctx: EvalContext) -> Any:
        args = [self.evaluate(a, ctx) for a in node.args]
        if node.receiver is not None:
            receiver = self.evaluate(node.receiver, ctx)
            args = [receiver] + args
        fn = ctx.functions.get(node.func)
        if fn is None:
            raise EvaluationError(
                f"unknown function {node.func!r} "
                f"(line {node.line}, column {node.column})"
            )
        return fn(ctx, *args)

    # -- operators ---------------------------------------------------------
    def _eval_unary(self, node: Unary, ctx: EvalContext) -> Any:
        value = self.evaluate(node.operand, ctx)
        if node.op == "!":
            return not _truthy(value, node, "'!'")
        if node.op == "-":
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise EvaluationError(f"unary '-' requires a number, got {value!r}")
            return -value
        raise EvaluationError(f"unknown unary operator {node.op!r}")

    def _eval_binary(self, node: Binary, ctx: EvalContext) -> Any:
        op = node.op
        # short-circuit forms
        if op == "and":
            left = self.evaluate(node.left, ctx)
            if not _truthy(left, node, "'and'"):
                return False
            return _truthy(self.evaluate(node.right, ctx), node, "'and'")
        if op == "or":
            left = self.evaluate(node.left, ctx)
            if _truthy(left, node, "'or'"):
                return True
            return _truthy(self.evaluate(node.right, ctx), node, "'or'")
        if op == "->":
            left = self.evaluate(node.left, ctx)
            if not _truthy(left, node, "'->'"):
                return True
            return _truthy(self.evaluate(node.right, ctx), node, "'->'")

        left = self.evaluate(node.left, ctx)
        right = self.evaluate(node.right, ctx)
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "in":
            if not isinstance(right, (list, tuple, set, frozenset)):
                raise EvaluationError("'in' requires a collection on the right")
            return left in right
        if op in ("<", "<=", ">", ">="):
            for v in (left, right):
                if not isinstance(v, (int, float)) or isinstance(v, bool):
                    raise EvaluationError(
                        f"comparison {op!r} requires numbers, got {v!r} "
                        f"(line {node.line}, column {node.column})"
                    )
            return {"<": left < right, "<=": left <= right,
                    ">": left > right, ">=": left >= right}[op]
        if op in ("+", "-", "*", "/", "%"):
            for v in (left, right):
                if not isinstance(v, (int, float)) or isinstance(v, bool):
                    raise EvaluationError(
                        f"arithmetic {op!r} requires numbers, got {v!r}"
                    )
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if right == 0:
                    raise EvaluationError("division by zero")
                return left / right
            if right == 0:
                raise EvaluationError("modulo by zero")
            return left % right
        raise EvaluationError(f"unknown operator {op!r}")

    # -- quantifiers -------------------------------------------------------
    def _eval_quantifier(self, node: Quantifier, ctx: EvalContext) -> bool:
        domain = _filter_domain(
            ctx, self.evaluate(node.domain, ctx), node.type_name, node
        )
        matches = 0
        for item in domain:
            ctx.push({node.var: item})
            try:
                ok = _truthy(
                    self.evaluate(node.body, ctx), node, f"'{node.kind}' body"
                )
            finally:
                ctx.pop()
            if node.kind == "forall":
                if not ok:
                    return False
            elif ok:
                if node.kind == "exists":
                    return True
                matches += 1  # exists_unique keeps counting
        if node.kind == "forall":
            return True
        if node.kind == "exists":
            return False
        return matches == 1

    def _eval_select(self, node: Select, ctx: EvalContext) -> Any:
        domain = _filter_domain(
            ctx, self.evaluate(node.domain, ctx), node.type_name, node
        )
        out: List[Any] = []
        for item in domain:
            ctx.push({node.var: item})
            try:
                ok = _truthy(self.evaluate(node.body, ctx), node, "'select' body")
            finally:
                ctx.pop()
            if ok:
                if node.one:
                    return item
                out.append(item)
        if node.one:
            return None
        return out

"""Recursive-descent parser for constraint expressions.

Grammar (highest line binds loosest)::

    expr        := implies
    implies     := or_expr ('->' or_expr)*               (right-assoc)
    or_expr     := and_expr (('or' | '||') and_expr)*
    and_expr    := not_expr (('and' | '&&') not_expr)*
    not_expr    := ('!' | 'not') not_expr | comparison
    comparison  := additive (('<'|'<='|'>'|'>='|'=='|'!='|'in') additive)?
    additive    := term (('+'|'-') term)*
    term        := unary (('*'|'/'|'%') unary)*
    unary       := '-' unary | postfix
    postfix     := primary ('.' IDENT ['(' args ')'])*
    primary     := NUMBER | STRING | 'true' | 'false' | 'nil'
                 | quantified | select | IDENT ['(' args ')']
                 | '(' expr ')' | '{' [expr (',' expr)*] '}'
    quantified  := ('forall'|'exists' ['unique']) IDENT [':' IDENT]
                   'in' expr '|' expr
    select      := 'select' ['one'] IDENT [':' IDENT] 'in' expr '|' expr
"""

from __future__ import annotations

from typing import List, Optional

from repro.acme.lexer import TokenStream, tokenize
from repro.constraints.ast import (
    Binary,
    Call,
    Literal,
    Name,
    Node,
    PropertyAccess,
    Quantifier,
    Select,
    SetLiteral,
    Unary,
)
from repro.errors import ParseError

__all__ = ["parse_expression", "ExpressionParser"]

_KEYWORDS = {
    "forall", "exists", "unique", "select", "one", "in",
    "and", "or", "not", "true", "false", "nil",
}


class ExpressionParser:
    """Parses one expression; also reusable by the repair-DSL parser
    (construct with an existing :class:`TokenStream`)."""

    def __init__(self, ts: TokenStream):
        self.ts = ts

    # -- entry -----------------------------------------------------------------
    def expression(self) -> Node:
        return self._implies()

    # -- precedence ladder --------------------------------------------------------
    def _implies(self) -> Node:
        left = self._or()
        if self.ts.at_punct("->"):
            tok = self.ts.advance()
            right = self._implies()  # right associative
            return Binary("->", left, right).at(tok.line, tok.column)
        return left

    def _or(self) -> Node:
        left = self._and()
        while self.ts.at_ident("or") or self.ts.at_punct("||"):
            tok = self.ts.advance()
            left = Binary("or", left, self._and()).at(tok.line, tok.column)
        return left

    def _and(self) -> Node:
        left = self._not()
        while self.ts.at_ident("and") or self.ts.at_punct("&&"):
            tok = self.ts.advance()
            left = Binary("and", left, self._not()).at(tok.line, tok.column)
        return left

    def _not(self) -> Node:
        if self.ts.at_punct("!") or self.ts.at_ident("not"):
            tok = self.ts.advance()
            return Unary("!", self._not()).at(tok.line, tok.column)
        return self._comparison()

    _CMP = ("<=", ">=", "<", ">", "==", "!=")

    def _comparison(self) -> Node:
        left = self._additive()
        for op in self._CMP:
            if self.ts.at_punct(op):
                tok = self.ts.advance()
                return Binary(op, left, self._additive()).at(tok.line, tok.column)
        if self.ts.at_ident("in"):
            tok = self.ts.advance()
            return Binary("in", left, self._additive()).at(tok.line, tok.column)
        return left

    def _additive(self) -> Node:
        left = self._term()
        while self.ts.at_punct("+") or self.ts.at_punct("-"):
            tok = self.ts.advance()
            left = Binary(tok.text, left, self._term()).at(tok.line, tok.column)
        return left

    def _term(self) -> Node:
        left = self._unary()
        while self.ts.at_punct("*") or self.ts.at_punct("/") or self.ts.at_punct("%"):
            tok = self.ts.advance()
            left = Binary(tok.text, left, self._unary()).at(tok.line, tok.column)
        return left

    def _unary(self) -> Node:
        if self.ts.at_punct("-"):
            tok = self.ts.advance()
            return Unary("-", self._unary()).at(tok.line, tok.column)
        return self._postfix()

    def _postfix(self) -> Node:
        node = self._primary()
        while self.ts.at_punct("."):
            self.ts.advance()
            attr_tok = self.ts.expect_ident()
            if self.ts.at_punct("("):
                args = self._arguments()
                node = Call(attr_tok.text, args, receiver=node).at(
                    attr_tok.line, attr_tok.column
                )
            else:
                node = PropertyAccess(node, attr_tok.text).at(
                    attr_tok.line, attr_tok.column
                )
        return node

    def _arguments(self) -> List[Node]:
        self.ts.expect_punct("(")
        args: List[Node] = []
        if not self.ts.at_punct(")"):
            args.append(self.expression())
            while self.ts.match_punct(","):
                args.append(self.expression())
        self.ts.expect_punct(")")
        return args

    def _primary(self) -> Node:
        tok = self.ts.current
        if tok.kind == "number":
            self.ts.advance()
            return Literal(tok.value).at(tok.line, tok.column)
        if tok.kind == "string":
            self.ts.advance()
            return Literal(tok.text).at(tok.line, tok.column)
        if tok.is_ident("true"):
            self.ts.advance()
            return Literal(True).at(tok.line, tok.column)
        if tok.is_ident("false"):
            self.ts.advance()
            return Literal(False).at(tok.line, tok.column)
        if tok.is_ident("nil"):
            self.ts.advance()
            return Literal(None).at(tok.line, tok.column)
        if tok.is_ident("forall") or tok.is_ident("exists"):
            return self._quantifier()
        if tok.is_ident("select"):
            return self._select()
        if self.ts.match_punct("("):
            inner = self.expression()
            self.ts.expect_punct(")")
            return inner
        if self.ts.match_punct("{"):
            items: List[Node] = []
            if not self.ts.at_punct("}"):
                items.append(self.expression())
                while self.ts.match_punct(","):
                    items.append(self.expression())
            self.ts.expect_punct("}")
            return SetLiteral(items).at(tok.line, tok.column)
        if tok.kind == "ident":
            if tok.text in _KEYWORDS:
                raise self.ts.error(f"unexpected keyword {tok.text!r}")
            self.ts.advance()
            if self.ts.at_punct("("):
                args = self._arguments()
                return Call(tok.text, args).at(tok.line, tok.column)
            return Name(tok.text).at(tok.line, tok.column)
        raise self.ts.error(f"unexpected token {tok.text!r} in expression")

    # -- quantified forms ------------------------------------------------------------
    def _var_type_domain(self):
        var = self.ts.expect_ident().text
        type_name: Optional[str] = None
        if self.ts.match_punct(":"):
            # allow set{...} style annotations: `set{ServerGroupT}`
            tname = self.ts.expect_ident().text
            if tname == "set" and self.ts.match_punct("{"):
                tname = self.ts.expect_ident().text
                self.ts.expect_punct("}")
            type_name = tname
        self.ts.expect_ident("in")
        domain = self.expression()
        self.ts.expect_punct("|")
        body = self.expression()
        return var, type_name, domain, body

    def _quantifier(self) -> Node:
        tok = self.ts.advance()  # forall | exists
        kind = tok.text
        if kind == "exists" and self.ts.match_ident("unique"):
            kind = "exists_unique"
        var, type_name, domain, body = self._var_type_domain()
        return Quantifier(kind, var, type_name, domain, body).at(tok.line, tok.column)

    def _select(self) -> Node:
        tok = self.ts.advance()  # select
        one = self.ts.match_ident("one")
        var, type_name, domain, body = self._var_type_domain()
        return Select(var, type_name, domain, body, one=one).at(tok.line, tok.column)


def parse_expression(source: str) -> Node:
    """Parse a standalone constraint expression from text."""
    ts = TokenStream(tokenize(source))
    node = ExpressionParser(ts).expression()
    if ts.current.kind != "eof":
        raise ParseError(
            f"trailing input after expression: {ts.current.text!r}",
            ts.current.line,
            ts.current.column,
        )
    return node

"""Built-in functions available to constraint and repair expressions.

Each function receives an :class:`~repro.constraints.evaluator.EvalContext`
first (for access to the system under evaluation), then the evaluated
arguments.  All collection arguments accept any Python sequence.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List

from repro.acme.elements import Component, Connector, Element, Port, Role
from repro.errors import EvaluationError

__all__ = ["STDLIB"]


def _seq(value: Any, what: str) -> List[Any]:
    if isinstance(value, (list, tuple, set, frozenset)):
        return list(value)
    raise EvaluationError(f"{what} expects a collection, got {type(value).__name__}")


def _fn_size(ctx, value: Any) -> int:
    return len(_seq(value, "size"))


def _fn_is_empty(ctx, value: Any) -> bool:
    return len(_seq(value, "isEmpty")) == 0


def _fn_contains(ctx, collection: Any, item: Any) -> bool:
    return item in _seq(collection, "contains")


def _numbers(value: Any, what: str) -> List[float]:
    out = []
    for v in _seq(value, what):
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            raise EvaluationError(f"{what} expects numbers, found {v!r}")
        out.append(float(v))
    return out


def _fn_sum(ctx, value: Any) -> float:
    return float(sum(_numbers(value, "sum")))


def _fn_avg(ctx, value: Any) -> float:
    nums = _numbers(value, "avg")
    if not nums:
        raise EvaluationError("avg of an empty collection")
    return sum(nums) / len(nums)


def _fn_max(ctx, value: Any) -> float:
    nums = _numbers(value, "max")
    if not nums:
        raise EvaluationError("max of an empty collection")
    return max(nums)


def _fn_min(ctx, value: Any) -> float:
    nums = _numbers(value, "min")
    if not nums:
        raise EvaluationError("min of an empty collection")
    return min(nums)


def _element(value: Any, what: str) -> Element:
    if not isinstance(value, Element):
        raise EvaluationError(f"{what} expects a model element, got {value!r}")
    return value


def _as_component(ctx, value: Any, what: str) -> Component:
    el = _element(value, what)
    if isinstance(el, Component):
        return el
    raise EvaluationError(f"{what} expects a component, got {el.kind}")


def _fn_connected(ctx, a: Any, b: Any) -> bool:
    """True when a connector links the two components."""
    return ctx.system.connected(
        _as_component(ctx, a, "connected"), _as_component(ctx, b, "connected")
    )


def _fn_attached(ctx, a: Any, b: Any) -> bool:
    """True for an attached (port, role) pair, in either order.

    Also accepts (component, connector): true when any of the component's
    ports attaches to any of the connector's roles — the loose usage in
    Figure 5's ``attached(badRole, r)``-style tests.
    """
    ea, eb = _element(a, "attached"), _element(b, "attached")
    if isinstance(ea, (Port, Role)) and isinstance(eb, (Port, Role)):
        return ctx.system.is_attached(ea, eb)
    comp = conn = None
    for e in (ea, eb):
        if isinstance(e, Component):
            comp = e
        elif isinstance(e, Connector):
            conn = e
        elif isinstance(e, Role):
            conn = e.connector
        elif isinstance(e, Port):
            comp = e.component
    if comp is None or conn is None:
        raise EvaluationError("attached expects port/role or component/connector")
    return any(c is comp for c in ctx.system.components_on(conn))


def _fn_declares_type(ctx, element: Any, type_name: Any) -> bool:
    if not isinstance(type_name, str):
        raise EvaluationError("declaresType expects a type name string")
    return _element(element, "declaresType").declares_type(type_name)


def _fn_has_property(ctx, element: Any, name: Any) -> bool:
    return _element(element, "hasProperty").has_property(str(name))


def _fn_union(ctx, a: Any, b: Any) -> List[Any]:
    out = _seq(a, "union")
    for item in _seq(b, "union"):
        if item not in out:
            out.append(item)
    return out


def _fn_intersection(ctx, a: Any, b: Any) -> List[Any]:
    bs = _seq(b, "intersection")
    return [x for x in _seq(a, "intersection") if x in bs]


def _fn_abs(ctx, x: Any) -> float:
    if not isinstance(x, (int, float)) or isinstance(x, bool):
        raise EvaluationError(f"abs expects a number, got {x!r}")
    return abs(float(x))


def _fn_sqrt(ctx, x: Any) -> float:
    if not isinstance(x, (int, float)) or isinstance(x, bool) or x < 0:
        raise EvaluationError(f"sqrt expects a non-negative number, got {x!r}")
    return math.sqrt(float(x))


STDLIB: Dict[str, Callable[..., Any]] = {
    "size": _fn_size,
    "isEmpty": _fn_is_empty,
    "contains": _fn_contains,
    "sum": _fn_sum,
    "avg": _fn_avg,
    "max": _fn_max,
    "min": _fn_min,
    "connected": _fn_connected,
    "attached": _fn_attached,
    "declaresType": _fn_declares_type,
    "hasProperty": _fn_has_property,
    "union": _fn_union,
    "intersection": _fn_intersection,
    "abs": _fn_abs,
    "sqrt": _fn_sqrt,
}

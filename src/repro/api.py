"""The scenario-neutral experiment facade.

One import gives scripts, notebooks, and the ``python -m repro`` CLI the
whole experiment surface::

    from repro import api

    result = api.run(api.RunConfig(scenario="master_worker"))
    print(result.summary()["completed"])

    for entry in api.list_scenarios():
        print(entry["name"], "-", entry["description"])

    pair = api.compare("pipeline", fast=True)
    print(pair["adapted"].completed - pair["control"].completed)

Everything dispatches through the scenario registry and shares the
bounded LRU result cache, so mixing this facade with the legacy
``run_scenario(ScenarioConfig(...))`` shim never duplicates a
30-minute simulation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

from repro.experiment.config import RunConfig, as_run_config
from repro.experiment.params import (
    ClientServerParams,
    PipelineParams,
    ScenarioParams,
)
from repro.experiment.result import ClientServerResult, PipelineResult, RunResult
from repro.experiment.runner import (
    clear_cache,
    run_scenario,
    set_cache_capacity,
)
from repro.experiment.scenario import ScenarioConfig
from repro.experiment.scenarios import (
    Scenario,
    ScenarioEntry,
    register_scenario,
    scenario_entries,
    scenario_entry,
    scenario_names,
    unregister_scenario,
)
from repro.runtime.sharding import ShardingSpec
from repro.runtime.stats import RuntimeStats, ShardStats

__all__ = [
    "ShardingSpec",
    "RuntimeStats",
    "ShardStats",
    "RunConfig",
    "as_run_config",
    "RunResult",
    "ClientServerResult",
    "PipelineResult",
    "ScenarioParams",
    "ClientServerParams",
    "PipelineParams",
    "Scenario",
    "ScenarioEntry",
    "ScenarioConfig",
    "run",
    "make_config",
    "list_scenarios",
    "compare",
    "report",
    "register_scenario",
    "unregister_scenario",
    "scenario_entry",
    "scenario_entries",
    "scenario_names",
    "clear_cache",
    "set_cache_capacity",
]

#: horizon used by ``fast=True`` / the CLI's ``--fast`` smoke mode
FAST_HORIZON = 300.0


def run(config: Union[RunConfig, ScenarioConfig], fresh: bool = False) -> RunResult:
    """Run (or fetch the cached result of) one configured scenario."""
    return run_scenario(config, fresh=fresh)


def make_config(
    scenario: str = "client_server",
    *,
    name: Optional[str] = None,
    adaptation: bool = True,
    seed: int = 2002,
    horizon: Optional[float] = None,
    sample_period: Optional[float] = None,
    fast: bool = False,
    params: Optional[ScenarioParams] = None,
    overrides: Optional[Dict[str, Any]] = None,
) -> RunConfig:
    """Build a resolved :class:`RunConfig` from loosely-typed inputs.

    This is the CLI's constructor: neutral fields are keywords,
    ``fast=True`` caps the horizon at :data:`FAST_HORIZON`, and
    ``overrides`` routes any remaining ``field=value`` pairs through
    :meth:`RunConfig.but` (so scenario-specific names land in the typed
    params block, with unknown names rejected).
    """
    config = RunConfig(
        scenario=scenario,
        name=name if name is not None else ("adapted" if adaptation else "control"),
        seed=seed,
        adaptation=adaptation,
        params=params,
    )
    if horizon is not None:
        config = config.but(horizon=horizon)
    if sample_period is not None:
        config = config.but(sample_period=sample_period)
    if overrides:
        config = config.but(**overrides)
    if fast:  # applied last: the smoke cap wins however horizon was spelled
        config = config.but(horizon=min(config.horizon, FAST_HORIZON))
    return config.resolved()


def list_scenarios() -> List[Dict[str, Any]]:
    """Registered scenarios with their typed param blocks' defaults."""
    return [
        {
            "name": entry.name,
            "description": entry.description,
            "params_type": entry.params_type.__name__,
            "params": entry.params_type().to_dict(),
        }
        for entry in scenario_entries()
    ]


def compare(
    scenario: str = "client_server",
    *,
    seed: int = 2002,
    horizon: Optional[float] = None,
    fast: bool = False,
    fresh: bool = False,
    overrides: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The paper's headline comparison for any scenario.

    Runs the adapted and control variants of ``scenario`` under the
    identical seeded workload and returns ``{"scenario", "adapted",
    "control", "delta"}`` where ``delta`` holds the adapted-minus-control
    completion scalars.
    """
    kwargs = dict(
        seed=seed, horizon=horizon, fast=fast, overrides=overrides
    )
    adapted = run(make_config(scenario, adaptation=True, **kwargs), fresh=fresh)
    control = run(make_config(scenario, adaptation=False, **kwargs), fresh=fresh)
    return {
        "scenario": scenario,
        "adapted": adapted,
        "control": control,
        "delta": {
            "completed": adapted.completed - control.completed,
            "dropped": adapted.dropped - control.dropped,
            "repairs_committed": len(adapted.history.committed),
        },
    }


def report(config: Union[RunConfig, ScenarioConfig], fresh: bool = False) -> str:
    """Run one config and render a text report.

    Client/server runs get the paper's §5 claims table; every scenario
    gets the neutral summary plus per-series strips.
    """
    from repro.experiment import reporting
    from repro.experiment.metrics import extract_claims
    from repro.util.tables import render_series, render_table

    result = run(config, fresh=fresh)
    cfg = result.config
    blocks: List[str] = [
        f"scenario {cfg.scenario!r}, run {cfg.name!r} "
        f"(seed {cfg.seed}, horizon {cfg.horizon:.0f} s, "
        f"adaptation {'on' if cfg.adaptation else 'off'})"
    ]
    summary = result.summary()
    rows = [
        ["issued", summary["issued"]],
        ["completed", summary["completed"]],
        ["dropped", summary["dropped"]],
        ["repairs committed", summary["repairs"]["committed"]],
        ["repairs aborted", summary["repairs"]["aborted"]],
    ]
    for key, value in sorted((summary.get("details") or {}).items()):
        rows.append([key, value])
    blocks.append(render_table(["measure", "value"], rows, title="summary"))
    if isinstance(result, ClientServerResult):
        blocks.append(
            reporting.render_claims(
                extract_claims(result), title="paper §5 claims"
            )
        )
    blocks.append(reporting.render_repair_intervals(result))
    for name in sorted(result.series):
        ts = result.s(name)
        times, values = ts.as_lists()
        blocks.append(render_series(name, times, values, log=False, unit=ts.unit))
    return "\n\n".join(blocks)

"""The unified runtime statistics surface.

:class:`RuntimeStats` replaces the ``bus_stats()`` / ``gauge_stats()``
/ ``constraint_stats()`` / ``telemetry_stats()`` / ``fault_stats()``
method sprawl on :class:`~repro.runtime.core.AdaptationRuntime` with
one typed, frozen snapshot: the five counter sections the old methods
returned, the ``faults`` section when a fault plane exists, and — on a
sharded runtime — one :class:`ShardStats` per shard next to the
aggregate rollup.

Shape discipline: :meth:`RuntimeStats.to_dict` is **value-identical**
to the dict the old ``AdaptationRuntime.stats()`` returned (regression
tests pin this), with ``faults`` present only when a plane exists and
``shards`` present only when sharding is active — so every historical
consumer of the dict shape keeps working through the deprecation
window.  :meth:`to_json` is strict JSON (``allow_nan=False``): a
snapshot that cannot round-trip is a bug, not a serialization quirk.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = ["RuntimeStats", "ShardStats"]


@dataclass(frozen=True)
class ShardStats:
    """One shard's slice of the counters (bus / constraints / repairs).

    Gauge, telemetry, and fault counters have no per-shard split — the
    gauge manager, probes, and fault plane are runtime-global — so a
    shard section carries only the planes that actually partition.
    """

    shard: int
    bus: Mapping[str, float]
    constraints: Mapping[str, int]
    repairs: Mapping[str, int]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shard": self.shard,
            "bus": dict(self.bus),
            "constraints": dict(self.constraints),
            "repairs": dict(self.repairs),
        }


@dataclass(frozen=True)
class RuntimeStats:
    """Every runtime counter section at once, typed and frozen."""

    bus: Mapping[str, float] = field(default_factory=dict)
    gauges: Mapping[str, int] = field(default_factory=dict)
    constraints: Mapping[str, int] = field(default_factory=dict)
    repairs: Mapping[str, int] = field(default_factory=dict)
    telemetry: Mapping[str, int] = field(default_factory=dict)
    #: None on runs without a fault plane (section absent from the dict)
    faults: Optional[Mapping[str, Any]] = None
    #: per-shard sections; empty on the unsharded path
    shards: Tuple[ShardStats, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        """The historical ``AdaptationRuntime.stats()`` dict shape.

        ``faults`` appears only when a fault plane existed and
        ``shards`` only when sharding was active, so unsharded no-fault
        runs keep their exact historical shape.
        """
        data: Dict[str, Any] = {
            "bus": dict(self.bus),
            "gauges": dict(self.gauges),
            "constraints": dict(self.constraints),
            "repairs": dict(self.repairs),
            "telemetry": dict(self.telemetry),
        }
        if self.faults is not None:
            data["faults"] = dict(self.faults)
        if self.shards:
            data["shards"] = [shard.to_dict() for shard in self.shards]
        return data

    def to_json(self, indent: Optional[int] = None) -> str:
        """Strict JSON (``allow_nan=False``) of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, allow_nan=False)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RuntimeStats":
        """Inverse of :meth:`to_dict` (e.g. after a JSON round trip)."""
        return cls(
            bus=dict(data.get("bus", {})),
            gauges=dict(data.get("gauges", {})),
            constraints=dict(data.get("constraints", {})),
            repairs=dict(data.get("repairs", {})),
            telemetry=dict(data.get("telemetry", {})),
            faults=(dict(data["faults"]) if data.get("faults") is not None else None),
            shards=tuple(
                ShardStats(
                    shard=entry["shard"],
                    bus=dict(entry.get("bus", {})),
                    constraints=dict(entry.get("constraints", {})),
                    repairs=dict(entry.get("repairs", {})),
                )
                for entry in data.get("shards", ())
            ),
        )

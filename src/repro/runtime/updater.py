"""Style-agnostic gauge consumer: maps reports onto model properties.

The client/server scenario keeps its specialised
:class:`~repro.monitoring.consumers.ModelUpdater` (it also mirrors values
onto link connectors and roles, which Figure 5's ``badRole`` needs).  Every
other style can use this generic consumer: ``gauge.<kind>.<target>``
reports set ``property_map[kind]`` on the model component named
``<target>``, then nudge the architecture manager to re-evaluate.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.acme.system import ArchSystem
from repro.bus.bus import EventBus
from repro.bus.messages import Message

__all__ = ["PropertyUpdater"]


class PropertyUpdater:
    """Applies ``gauge.<kind>.<target>`` reports via a kind -> property map.

    Reports whose kind is unmapped or whose target is missing from the
    model (e.g. a gauge firing mid-repair for a just-removed element) are
    counted and skipped, like the client/server updater.

    With a ``gate`` (a :class:`~repro.monitoring.manager.ThresholdGate`),
    every report still updates the model property, but the architecture
    manager is only woken when the gate says the value crossed (or
    un-crossed) an invariant threshold — steady-state gauge ticks cost no
    constraint-evaluation work.
    """

    def __init__(
        self,
        system: ArchSystem,
        gauge_bus: EventBus,
        arch_manager=None,
        property_map: Optional[Mapping[str, str]] = None,
        gate=None,
    ):
        self.system = system
        self.arch_manager = arch_manager
        self.property_map = dict(property_map or {})
        self.gate = gate
        self.applied = 0
        self.skipped = 0
        gauge_bus.subscribe("gauge.>", self._on_report)

    def _on_report(self, message: Message) -> None:
        parts = message.subject.split(".")
        if len(parts) != 3:
            self.skipped += 1
            return
        _, kind, target = parts
        prop = self.property_map.get(kind)
        if prop is None or not self.system.has_component(target):
            self.skipped += 1
            return
        value = float(message["value"])
        self.system.component(target).set_property(prop, value)
        self.applied += 1
        if self.arch_manager is None:
            return
        if self.gate is None or self.gate.should_wake(kind, target, value):
            self.arch_manager.evaluate()

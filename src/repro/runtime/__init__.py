"""The reusable adaptation control plane (the paper's Figure 1, extracted).

Wraps the monitoring -> gauges -> model -> constraints -> repair ->
translation loop behind two small surfaces:

* :class:`AdaptationSpec` — declarative description of one scenario's
  control plane (style, DSL, thresholds, probe/gauge bindings, policies);
* :class:`ManagedApplication` — the three-method protocol an application
  implements to become adaptable (model snapshot, intent executor,
  optional runtime view).

:class:`AdaptationRuntime` builds and owns the whole stack from those
two; :mod:`repro.experiment.scenarios` registers named scenarios on top.
"""

from repro.runtime.app import IntentExecutor, ManagedApplication
from repro.runtime.core import AdaptationRuntime
from repro.runtime.sharding import (
    ShardingSpec,
    register_shard_key,
    resolve_shard_key,
    shard_key_names,
)
from repro.runtime.spec import (
    AdaptationSpec,
    GaugeBinding,
    InstrumentBinding,
    ProbeBinding,
)
from repro.runtime.stats import RuntimeStats, ShardStats
from repro.runtime.updater import PropertyUpdater

__all__ = [
    "AdaptationRuntime",
    "AdaptationSpec",
    "GaugeBinding",
    "InstrumentBinding",
    "IntentExecutor",
    "ManagedApplication",
    "ProbeBinding",
    "PropertyUpdater",
    "RuntimeStats",
    "ShardStats",
    "ShardingSpec",
    "register_shard_key",
    "resolve_shard_key",
    "shard_key_names",
]

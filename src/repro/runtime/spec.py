"""Declarative configuration for an :class:`AdaptationRuntime`.

An :class:`AdaptationSpec` says *what* the control plane for one scenario
looks like — style family, repair DSL source, monitoring instrumentation,
thresholds, repair-engine policy — without wiring any of it.  The runtime
consumes the spec in a fixed order (model, checker, DSL, gauge manager,
translator, engine, buses, instruments, updater), so two runs built from
equal specs produce identical event schedules.

Instrumentation is an ordered list of bindings rather than a free-form
callback: each :class:`ProbeBinding`/:class:`GaugeBinding` contributes one
probe or gauge, and the list order *is* the creation order.  Creation
order matters in a deterministic simulator — gauge activations are
scheduled at construction time and ties break in scheduling order — which
is why the spec keeps it explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from repro.bus.bus import DeliveryModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.spec import FaultSpec
    from repro.monitoring.gauges import Gauge
    from repro.monitoring.manager import WakeThreshold
    from repro.repair.resilience import (
        BreakerPolicy,
        QuarantinePolicy,
        RetryPolicy,
    )
    from repro.runtime.core import AdaptationRuntime
    from repro.runtime.sharding import ShardingSpec

__all__ = ["ProbeBinding", "GaugeBinding", "InstrumentBinding", "AdaptationSpec"]


@dataclass(frozen=True)
class ProbeBinding:
    """One probe to deploy: a factory invoked with the built runtime.

    The factory typically closes over application objects and attaches the
    probe to ``runtime.probe_bus``.  Periodic probes are collected into
    ``runtime.periodic_probes`` and started by :meth:`AdaptationRuntime.start`;
    event probes (e.g. response hooks) need no start call.
    """

    factory: Callable[["AdaptationRuntime"], Any]
    periodic: bool = False


@dataclass(frozen=True)
class GaugeBinding:
    """One gauge to deploy through the runtime's gauge manager.

    ``entities`` names the runtime entities the gauge observes (used for
    repair-time redeployment); defaults to the gauge's own target.
    """

    factory: Callable[["AdaptationRuntime"], "Gauge"]
    entities: Optional[List[str]] = None


InstrumentBinding = Union[ProbeBinding, GaugeBinding]


@dataclass
class AdaptationSpec:
    """Everything that defines one scenario's control plane.

    Required:

    * ``style`` — the style-family name (informational; traces/reporting);
    * ``dsl_source`` — repair DSL text: invariants, strategies, tactics;
    * ``invariant_scopes`` — invariant name -> scope element type (how the
      checker fans each invariant out over model elements);
    * ``bindings`` — constraint-language globals (the task layer's
      thresholds, e.g. ``maxLatency``);
    * ``operators`` — builds the style-operator table for repair contexts
      (receives the runtime so operators can read the simulation clock);
    * ``instruments`` — ordered probe/gauge bindings (see module doc).

    Optional knobs mirror the seed experiment's defaults: bus delivery
    model (shared by both buses when given), gauge lifecycle costs, and
    the repair engine's pacing/selection policy.  ``updater`` builds the
    gauge consumer that maps reports onto the model; when omitted the
    generic :class:`~repro.runtime.updater.PropertyUpdater` is used with
    ``gauge_property_map``.
    """

    style: str
    dsl_source: str
    invariant_scopes: Mapping[str, Optional[str]]
    bindings: Mapping[str, Any]
    operators: Callable[["AdaptationRuntime"], Mapping[str, Callable[..., Any]]]
    instruments: Sequence[InstrumentBinding] = ()

    updater: Optional[Callable[["AdaptationRuntime"], Any]] = None
    gauge_property_map: Dict[str, str] = field(default_factory=dict)
    delivery: Optional[DeliveryModel] = None

    # bus delivery path: per-subscriber queued batch delivery (opt-in;
    # the default unbatched path is pinned bit-for-bit by the serial
    # fingerprints).  ``bus_queue_capacity=0`` means unbounded.
    bus_batching: bool = False
    bus_queue_policy: str = "unbounded"
    bus_queue_capacity: int = 0

    # gauge lifecycle (paper §4: creation charges a deployment delay)
    gauge_create_delay: float = 14.0
    gauge_caching: bool = False

    # repair engine policy (paper §5.3/§7)
    settle_time: float = 20.0
    failed_repair_cost: float = 2.0
    violation_policy: str = "first"

    # repair scheduling: "serial" (the paper, bit-for-bit) or "disjoint"
    # (concurrent repairs on provably non-overlapping footprints)
    concurrency: str = "serial"
    max_concurrent_repairs: int = 8

    # telemetry plane: "scalar" (per-sample messages into python windows —
    # the pinned-fingerprint default) or "columnar" (batched array
    # messages into numpy ring buffers, X8).  ``wake_thresholds`` maps
    # gauge kind -> WakeThreshold; with a columnar plane the generic
    # updater only wakes the constraint checker on threshold crossings.
    telemetry: str = "scalar"
    wake_thresholds: Mapping[str, "WakeThreshold"] = field(default_factory=dict)

    # fault plane: a frozen FaultSpec turns on deterministic failure
    # injection (component outages, effector faults, probe dropout, bus
    # delivery drops).  None — the pinned-fingerprint default — builds
    # no plane at all.
    faults: Optional["FaultSpec"] = None

    # resilient repair execution: any non-None option switches the
    # engine to two-phase commit (translate, then commit) and enables
    # the corresponding hardening; all-None preserves the original
    # schedule bit for bit.
    repair_timeout: Optional[float] = None
    retry_policy: Optional["RetryPolicy"] = None
    breaker_policy: Optional["BreakerPolicy"] = None
    quarantine_policy: Optional["QuarantinePolicy"] = None
    history_capacity: Optional[int] = None

    # sharded control plane: a ShardingSpec with shards > 1 partitions
    # the model, buses, and repair loops per shard with a footprint-locked
    # cross-shard coordinator.  None — the pinned-fingerprint default —
    # builds the single-loop plane exactly as before.
    sharding: Optional["ShardingSpec"] = None

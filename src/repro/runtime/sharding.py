"""Frozen sharding configuration + the pluggable shard-key registry.

A :class:`ShardingSpec` says *how the control plane is partitioned* —
how many shards, which named key function assigns model elements to
them, and the coordinator's cross-shard lock limit — without wiring any
of it.  Like :class:`~repro.faults.spec.FaultSpec` it is a frozen,
hashable dataclass, but it is additionally validated **on construction**
(``__post_init__``): a spec object that exists is a spec object that is
internally consistent, so config plumbing (``--set sharding.shards=4``)
fails at parse time, not mid-build.

Shard keys are plain functions ``(element_name, shards) -> Optional[int]``
registered under a name; ``None`` means "no opinion" and lands the
element on shard 0.  Two keys ship:

* ``"hash"`` — CRC-32 of the element name modulo the shard count
  (deterministic across processes — deliberately *not* Python's
  ``hash()``, which varies with ``PYTHONHASHSEED``);
* ``"numeric_suffix"`` — the element name's trailing digits modulo the
  shard count (``T7`` -> ``7 % shards``), the natural key for styles
  that number their tenants / stages / sites.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Optional

__all__ = [
    "ShardingSpec",
    "ShardKeyFn",
    "register_shard_key",
    "resolve_shard_key",
    "shard_key_names",
]

#: ``(element_name, shards) -> shard index`` (None = no opinion -> shard 0)
ShardKeyFn = Callable[[str, int], Optional[int]]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(f"invalid sharding spec: {message}")


@dataclass(frozen=True)
class ShardingSpec:
    """How to partition one scenario's control plane.

    ``shards`` is the partition count (1 = sharding machinery off, same
    as ``enabled=False``); ``key`` names a registered shard-key function;
    ``max_lock_shards`` caps how many shards a single cross-shard repair
    may lock at once (0 = unlimited).  ``enabled`` is the kill switch
    that leaves the spec in place but routes the runtime down the
    unsharded (fingerprint-pinned) path.
    """

    shards: int = 1
    key: str = "hash"
    max_lock_shards: int = 0
    enabled: bool = True

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        _require(isinstance(self.shards, int), "shards must be an int")
        _require(self.shards >= 1, f"shards must be >= 1, got {self.shards}")
        _require(
            isinstance(self.key, str) and bool(self.key),
            "key must name a registered shard key function",
        )
        _require(
            isinstance(self.max_lock_shards, int) and self.max_lock_shards >= 0,
            f"max_lock_shards must be >= 0, got {self.max_lock_shards}",
        )

    def active(self) -> bool:
        """True when the runtime should actually build the sharded path."""
        return self.enabled and self.shards > 1


# ---------------------------------------------------------------------------
# Shard-key registry
# ---------------------------------------------------------------------------
_SHARD_KEYS: Dict[str, ShardKeyFn] = {}


def register_shard_key(name: str, fn: ShardKeyFn) -> None:
    """Register ``fn`` under ``name`` (re-registration is an error)."""
    if name in _SHARD_KEYS:
        raise ValueError(f"shard key {name!r} already registered")
    _SHARD_KEYS[name] = fn


def resolve_shard_key(name: str) -> ShardKeyFn:
    try:
        return _SHARD_KEYS[name]
    except KeyError:
        raise ValueError(
            f"unknown shard key {name!r}; registered: {shard_key_names()}"
        ) from None


def shard_key_names() -> list:
    return sorted(_SHARD_KEYS)


def _hash_key(name: str, shards: int) -> int:
    # crc32, not hash(): stable across interpreters and PYTHONHASHSEED.
    return zlib.crc32(name.encode("utf-8")) % shards


def _numeric_suffix_key(name: str, shards: int) -> Optional[int]:
    digits = ""
    for ch in reversed(name):
        if ch.isdigit():
            digits = ch + digits
        else:
            break
    if not digits:
        return None
    return int(digits) % shards


register_shard_key("hash", _hash_key)
register_shard_key("numeric_suffix", _numeric_suffix_key)

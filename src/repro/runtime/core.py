"""The reusable adaptation control plane.

:class:`AdaptationRuntime` assembles the full monitoring-and-repair stack
of Figure 1 — probe bus, gauges and their manager, architectural model,
constraint checker, repair engine, translator — from a declarative
:class:`~repro.runtime.spec.AdaptationSpec` and a wrapped
:class:`~repro.runtime.app.ManagedApplication`.  Nothing in here knows
about clients, servers, pipelines, or any other style: scenario builders
(see :mod:`repro.experiment.scenarios`) provide the style-specific parts
as data.

Construction order is fixed and documented because the simulator breaks
ties in scheduling order; building the same spec twice must produce the
same event schedule:

1. architectural model (from the managed application);
2. constraint checker + threshold bindings;
3. repair DSL parse, strategy build, invariant registration;
4. gauge manager;
5. intent executor (translator), which may capture the gauge manager;
6. architecture manager + strategy registration;
7. probe bus, then gauge bus (sharing the spec's delivery model);
8. instruments, in spec order (gauge creation schedules activations);
9. model updater.

``start`` launches the periodic probes (in instrument order); everything
else is event-driven from there.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, List, Optional, Tuple

from repro.acme.sharding import ShardedArchSystem
from repro.bus.bus import EventBus, QueuePolicy
from repro.bus.sharding import ShardedEventBus
from repro.constraints.invariants import ConstraintChecker
from repro.faults.plane import FaultPlane
from repro.monitoring.gauges import Gauge
from repro.monitoring.manager import GaugeManager, ThresholdGate
from repro.repair.dsl import parse_repair_dsl
from repro.repair.dsl.interp import build_strategies
from repro.repair.engine import ArchitectureManager
from repro.repair.sharding import ShardCoordinator
from repro.runtime.app import ManagedApplication
from repro.runtime.sharding import resolve_shard_key
from repro.runtime.spec import AdaptationSpec, GaugeBinding, ProbeBinding
from repro.runtime.stats import RuntimeStats, ShardStats
from repro.runtime.updater import PropertyUpdater
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace

__all__ = ["AdaptationRuntime"]


class AdaptationRuntime:
    """One scenario's control plane, built from a spec + managed app."""

    def __init__(
        self,
        sim: Simulator,
        app: ManagedApplication,
        spec: AdaptationSpec,
        trace: Optional[Trace] = None,
    ):
        self.sim = sim
        self.app = app
        self.spec = spec
        self.trace = trace if trace is not None else Trace()
        if spec.telemetry not in ("scalar", "columnar"):
            raise ValueError(
                f"telemetry must be 'scalar' or 'columnar', got {spec.telemetry!r}"
            )
        sharding = spec.sharding
        self.sharded = sharding is not None and sharding.active()
        if self.sharded:
            if spec.faults is not None and spec.faults.active():
                raise ValueError(
                    "sharding and fault injection cannot be combined "
                    "(the fault plane is not shard-aware yet)"
                )
            if spec.updater is not None:
                raise ValueError(
                    "sharding builds one PropertyUpdater per shard; "
                    "a custom spec.updater is unsupported"
                )

        # 1-3: model layer.  Sharded: partition the model by the spec's
        # shard key, then give every shard its own checker so invariant
        # evaluation fans out over shard-local elements only.
        document = parse_repair_dsl(spec.dsl_source)
        if self.sharded:
            self.model = ShardedArchSystem.partition(
                app.architecture(), sharding.shards,
                resolve_shard_key(sharding.key),
            )
            self.checkers: List[ConstraintChecker] = []
            for _ in range(sharding.shards):
                checker = ConstraintChecker()
                checker.bindings.update(spec.bindings)
                for decl in document.invariants:
                    checker.add_source(
                        decl.name, decl.expression,
                        scope_type=spec.invariant_scopes.get(decl.name),
                        repair=decl.strategy,
                    )
                self.checkers.append(checker)
            self.checker = None
        else:
            self.model = app.architecture()
            self.checker = ConstraintChecker()
            self.checker.bindings.update(spec.bindings)
            for decl in document.invariants:
                self.checker.add_source(
                    decl.name, decl.expression,
                    scope_type=spec.invariant_scopes.get(decl.name),
                    repair=decl.strategy,
                )
            self.checkers = [self.checker]

        # 4-6: gauge lifecycle, translation, repair engine.  The fault
        # plane (when the spec carries an active FaultSpec) wraps the
        # translator before the engine captures it; building the plane
        # schedules nothing, so a spec without faults is unaffected.
        self.fault_plane: Optional[FaultPlane] = None
        if spec.faults is not None and spec.faults.active():
            self.fault_plane = FaultPlane(sim, spec.faults, trace=self.trace)
        self.gauge_manager = GaugeManager(
            sim, self.trace,
            create_delay=spec.gauge_create_delay, cached=spec.gauge_caching,
        )
        self.translator = app.intent_executor(self)
        if self.fault_plane is not None:
            self.translator = self.fault_plane.wrap_translator(self.translator)
        if self.sharded:
            runtime_view = app.runtime_view()
            operators = spec.operators(self)
            self.managers: List[ArchitectureManager] = []
            for k in range(sharding.shards):
                manager = ArchitectureManager(
                    sim,
                    self.model.shard(k),
                    self.checkers[k],
                    translator=self.translator,
                    runtime=runtime_view,
                    operators=operators,
                    trace=self.trace,
                    settle_time=spec.settle_time,
                    failed_repair_cost=spec.failed_repair_cost,
                    violation_policy=spec.violation_policy,
                    concurrency=spec.concurrency,
                    max_concurrent_repairs=spec.max_concurrent_repairs,
                    repair_timeout=spec.repair_timeout,
                    retry_policy=spec.retry_policy,
                    breaker_policy=spec.breaker_policy,
                    quarantine_policy=spec.quarantine_policy,
                    history_capacity=spec.history_capacity,
                )
                # strategies hold per-engine interpreter state: rebuild
                # a fresh set for each shard rather than sharing
                for strategy in build_strategies(document).values():
                    manager.register_strategy(strategy)
                self.managers.append(manager)
            self.manager = ShardCoordinator(
                sim,
                self.model,
                self.managers,
                trace=self.trace,
                settle_time=spec.settle_time,
                max_lock_shards=sharding.max_lock_shards,
            )
        else:
            self.manager = ArchitectureManager(
                sim,
                self.model,
                self.checker,
                translator=self.translator,
                runtime=app.runtime_view(),
                operators=spec.operators(self),
                trace=self.trace,
                settle_time=spec.settle_time,
                failed_repair_cost=spec.failed_repair_cost,
                violation_policy=spec.violation_policy,
                concurrency=spec.concurrency,
                max_concurrent_repairs=spec.max_concurrent_repairs,
                repair_timeout=spec.repair_timeout,
                retry_policy=spec.retry_policy,
                breaker_policy=spec.breaker_policy,
                quarantine_policy=spec.quarantine_policy,
                history_capacity=spec.history_capacity,
            )
            for strategy in build_strategies(document).values():
                self.manager.register_strategy(strategy)
            self.managers = [self.manager]

        # 7-8: monitoring infrastructure
        queue_policy = None
        if spec.bus_batching:
            queue_policy = QueuePolicy(
                mode=spec.bus_queue_policy, capacity=spec.bus_queue_capacity
            )
        if self.sharded:
            self.probe_bus = ShardedEventBus(
                sim, sharding.shards, self.model.shard_of,
                delivery=spec.delivery, name="probe-bus",
                batched=spec.bus_batching, queue_policy=queue_policy,
            )
            self.gauge_bus = ShardedEventBus(
                sim, sharding.shards, self.model.shard_of,
                delivery=spec.delivery, name="gauge-bus",
                batched=spec.bus_batching, queue_policy=queue_policy,
            )
        else:
            self.probe_bus = EventBus(
                sim, delivery=spec.delivery, name="probe-bus",
                batched=spec.bus_batching, queue_policy=queue_policy,
            )
            self.gauge_bus = EventBus(
                sim, delivery=spec.delivery, name="gauge-bus",
                batched=spec.bus_batching, queue_policy=queue_policy,
            )
        if self.fault_plane is not None:
            self.fault_plane.bind_bus(self.probe_bus)
            self.fault_plane.bind_bus(self.gauge_bus)
        self.probes: List[Any] = []
        self.periodic_probes: List[Any] = []
        self.gauges: List[Gauge] = []
        for binding in spec.instruments:
            if isinstance(binding, GaugeBinding):
                gauge = binding.factory(self)
                self.gauge_manager.create(gauge, entities=binding.entities)
                self.gauges.append(gauge)
            elif isinstance(binding, ProbeBinding):
                probe = binding.factory(self)
                self.probes.append(probe)
                if binding.periodic:
                    self.periodic_probes.append(probe)
            else:  # pragma: no cover - spec typo guard
                raise TypeError(f"unknown instrument binding {binding!r}")

        # 9: close the monitoring half of the loop.  The wake gate only
        # exists on the columnar plane — scalar runs keep every report
        # waking the checker, which the serial fingerprints pin.
        self.wake_gate: Optional[ThresholdGate] = None
        if spec.telemetry == "columnar" and spec.wake_thresholds:
            self.wake_gate = ThresholdGate(spec.wake_thresholds)
        if self.sharded:
            # one updater per shard, each wired to that shard's slice of
            # the gauge bus and waking only that shard's repair loop
            self.updater = None
            self.updaters = [
                PropertyUpdater(
                    self.model.shard(k), self.gauge_bus.shard(k),
                    self.manager.shard_proxy(k),
                    property_map=spec.gauge_property_map,
                    gate=self.wake_gate,
                )
                for k in range(sharding.shards)
            ]
        elif spec.updater is not None:
            self.updater = spec.updater(self)
            self.updaters = [self.updater]
        else:
            self.updater = PropertyUpdater(
                self.model, self.gauge_bus, self.manager,
                property_map=spec.gauge_property_map,
                gate=self.wake_gate,
            )
            self.updaters = [self.updater]

        # 10 (fault mode only): bind the remaining injection surfaces —
        # probes for dropout windows, application components for outages.
        if self.fault_plane is not None:
            for probe in self.probes:
                self.fault_plane.bind_probe(probe)
            app.bind_faults(self.fault_plane)

        self._stopped = False

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Start every periodic probe (in instrument order), then faults."""
        for probe in self.periodic_probes:
            probe.start()
        if self.fault_plane is not None:
            self.fault_plane.start()

    def stop(self) -> None:
        """Stop periodic probes, flushing any buffered batches.

        Idempotent, and safe on a runtime that never started.  The
        experiment runner calls this on the error/abort path too, so
        batched probes (``CallbackProbe(batch=N)``) never silently drop
        their buffered tail when a run dies mid-burst.
        """
        if self._stopped:
            return
        self._stopped = True
        for probe in self.periodic_probes:
            probe.stop()

    # -- reporting ---------------------------------------------------------
    @property
    def history(self):
        return self.manager.history

    def _bus_section(self) -> Dict[str, float]:
        """Monitoring-overhead numbers for the experiment harness.

        Batching counters (batches, drops, stalls, queue depths) appear
        only when a bus actually runs the queued delivery path, so
        unbatched scenarios keep their historical stats shape.
        """
        stats = {
            "probe_published": self.probe_bus.published,
            "probe_mean_transit": self.probe_bus.mean_transit,
            "gauge_published": self.gauge_bus.published,
            "gauge_mean_transit": self.gauge_bus.mean_transit,
        }
        for prefix, bus in (("probe", self.probe_bus), ("gauge", self.gauge_bus)):
            bus_stats = bus.stats()
            if "batches" in bus_stats:
                for key in (
                    "batched_subscriptions",
                    "batches",
                    "dropped",
                    "stalled",
                    "peak_depth",
                    "max_batch",
                ):
                    stats[f"{prefix}_{key}"] = bus_stats[key]
        return stats

    def _gauge_section(self) -> Dict[str, int]:
        return {
            "created": self.gauge_manager.created,
            "redeployments": self.gauge_manager.redeployments,
        }

    def _constraint_section(self) -> Dict[str, int]:
        """Incremental-checker counters for the evaluation hot path
        (see docs/performance.md): evaluations, full vs incremental
        passes, and per-scope evaluate/reuse totals."""
        return {"evaluations": self.manager.evaluations,
                **self.manager.constraint_stats}

    def _telemetry_section(self) -> Dict[str, int]:
        """Columnar-plane counters (X8): volume and wakeup suppression.

        ``samples`` counts probe observations, ``batches`` the
        array-carrying messages among the probe reports.  ``wakeups`` /
        ``suppressed_reports`` come from the wake gate when one is
        installed; ungated runs report every applied gauge report as a
        wakeup and zero suppressions, so the sum is comparable across
        telemetry modes.
        """
        stats = {
            "samples": sum(int(getattr(p, "samples", 0)) for p in self.probes),
            "batches": sum(int(getattr(p, "batches", 0)) for p in self.probes),
        }
        if self.wake_gate is not None:
            stats.update(self.wake_gate.stats())
        else:
            stats["wakeups"] = sum(
                int(getattr(u, "applied", 0)) for u in self.updaters
            )
            stats["suppressed_reports"] = 0
        return stats

    def _fault_section(self) -> Dict[str, Any]:
        """The fault plane's injection counters ({} without a plane)."""
        if self.fault_plane is None:
            return {}
        return self.fault_plane.stats()

    def _shard_sections(self) -> Tuple[ShardStats, ...]:
        """Per-shard counter sections (empty on the unsharded path)."""
        if not self.sharded:
            return ()
        sections = []
        for k, manager in enumerate(self.managers):
            probe = self.probe_bus.shard(k)
            gauge = self.gauge_bus.shard(k)
            sections.append(
                ShardStats(
                    shard=k,
                    bus={
                        "probe_published": probe.published,
                        "probe_mean_transit": probe.mean_transit,
                        "gauge_published": gauge.published,
                        "gauge_mean_transit": gauge.mean_transit,
                    },
                    constraints={
                        "evaluations": manager.evaluations,
                        **manager.constraint_stats,
                    },
                    repairs=manager.repair_stats(),
                )
            )
        return tuple(sections)

    def stats(self) -> RuntimeStats:
        """Every counter section at once, as one typed, frozen
        :class:`~repro.runtime.stats.RuntimeStats` snapshot.

        ``stats().to_dict()`` reproduces the historical dict shape
        exactly: ``faults`` appears only when a fault plane exists and
        ``shards`` only when sharding is active, so no-fault unsharded
        runs keep their historical stats shape."""
        return RuntimeStats(
            bus=self._bus_section(),
            gauges=self._gauge_section(),
            constraints=self._constraint_section(),
            repairs=self.manager.repair_stats(),
            telemetry=self._telemetry_section(),
            faults=self._fault_section() if self.fault_plane is not None else None,
            shards=self._shard_sections(),
        )

    # -- deprecated per-section accessors ----------------------------------
    def _deprecated(self, old: str, new: str):
        warnings.warn(
            f"AdaptationRuntime.{old}() is deprecated; use {new}",
            DeprecationWarning,
            stacklevel=3,
        )

    def bus_stats(self) -> Dict[str, float]:
        """Deprecated: use :meth:`stats` (``.bus``)."""
        self._deprecated("bus_stats", "stats().bus")
        return self._bus_section()

    def gauge_stats(self) -> Dict[str, int]:
        """Deprecated: use :meth:`stats` (``.gauges``)."""
        self._deprecated("gauge_stats", "stats().gauges")
        return self._gauge_section()

    def constraint_stats(self) -> Dict[str, int]:
        """Deprecated: use :meth:`stats` (``.constraints``)."""
        self._deprecated("constraint_stats", "stats().constraints")
        return self._constraint_section()

    def telemetry_stats(self) -> Dict[str, int]:
        """Deprecated: use :meth:`stats` (``.telemetry``)."""
        self._deprecated("telemetry_stats", "stats().telemetry")
        return self._telemetry_section()

    def fault_stats(self) -> Dict[str, Any]:
        """Deprecated: use :meth:`stats` (``.faults``)."""
        self._deprecated("fault_stats", "stats().faults")
        return self._fault_section()

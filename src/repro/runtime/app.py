"""The contract between the adaptation runtime and a managed application.

The paper's central engineering claim is that the adaptation machinery is
"independent of any particular application".  :class:`ManagedApplication`
is that independence made concrete: it is everything the control plane
needs to know about the thing it adapts.  An application (real or
simulated) is wrapped by implementing three methods:

* :meth:`architecture` — an :class:`~repro.acme.system.ArchSystem`
  mirroring the application's *current* runtime configuration, typed by
  the style family the :class:`~repro.runtime.spec.AdaptationSpec` names;
* :meth:`intent_executor` — the translator that replays committed model
  intents onto the running system (charging whatever communication costs
  apply);
* :meth:`runtime_view` — optional read-only queries repairs may issue
  against the running system before committing (may return None when the
  style's operators never consult the runtime).

Everything else — buses, probes, gauges, constraint checking, repair
dispatch, translation scheduling — is owned by
:class:`~repro.runtime.core.AdaptationRuntime` and configured
declaratively through the spec.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, FrozenSet, Optional

from repro.acme.system import ArchSystem
from repro.repair.context import RuntimeView

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plane import FaultPlane
    from repro.runtime.core import AdaptationRuntime

__all__ = ["IntentExecutor", "ManagedApplication"]


class IntentExecutor(abc.ABC):
    """Replays committed :class:`~repro.repair.context.RuntimeIntent` lists.

    The architecture manager hands a committed repair's intents to
    ``execute`` and continues once ``on_done`` fires — the executor is
    free to spread the work over simulated time (the paper's ~30 s repair
    duration lives here).  :class:`~repro.translation.translator.Translator`
    is the client/server implementation.

    ``INTENT_OPS`` declares the intent ``op`` names the executor can
    replay; ``repro lint``'s wiring audit (WIR403) checks every op the
    spec's style operators emit against it.  ``None`` (the default)
    means "undeclared" and exempts the executor from the audit.
    """

    INTENT_OPS: Optional[FrozenSet[str]] = None

    @abc.abstractmethod
    def execute(self, intents, on_done=None):
        """Apply ``intents`` in order; invoke ``on_done()`` when finished."""


class ManagedApplication(abc.ABC):
    """Adapter making one application adaptable by an AdaptationRuntime."""

    #: human-readable identity, used in traces and reporting
    name: str = "app"

    @abc.abstractmethod
    def architecture(self) -> ArchSystem:
        """Architectural model of the current runtime configuration.

        Component/connector names must match their runtime counterparts
        (the translator maps committed intents onto runtime operations by
        name, mirroring the paper's model/runtime naming convention).
        """

    @abc.abstractmethod
    def intent_executor(self, runtime: "AdaptationRuntime") -> IntentExecutor:
        """Build the translator that applies committed intents.

        Receives the runtime so executors can reach shared services —
        most importantly ``runtime.gauge_manager`` for redeployment
        windows (the monitoring blind spot during repairs).
        """

    def runtime_view(self) -> Optional[RuntimeView]:
        """Read-only repair-time queries; None when operators need none."""
        return None

    def bind_faults(self, plane: "FaultPlane") -> None:
        """Register crashable components on the fault plane.

        Called by the runtime only when its spec carries an active
        :class:`~repro.faults.spec.FaultSpec`.  The default binds
        nothing — applications that support component outages override
        this with ``plane.bind_component(name, on_fail, on_recover)``
        calls for each crashable entity.
        """

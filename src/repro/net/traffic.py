"""Scheduled bandwidth-competition generators (the paper's Figure 7).

The testbed experiment ran "a program that generates the same bandwidth
competition for each experiment" (§5.1).  :class:`CrossTrafficGenerator`
drives a persistent capped flow through a :class:`~repro.util.StepFunction`
demand schedule, changing its rate at exactly the scheduled breakpoints —
identical in the control and adapted runs.
"""

from __future__ import annotations

from typing import List

from repro.errors import WorkloadError
from repro.net.flows import FlowNetwork
from repro.sim.kernel import Simulator
from repro.util.windows import StepFunction

__all__ = ["CrossTrafficGenerator"]


class CrossTrafficGenerator:
    """Applies a stepped demand schedule to one competing flow.

    ``schedule`` maps time -> demanded bits/s; 0 means no competition.
    Call :meth:`start` once after construction; the generator installs the
    initial rate and self-schedules every breakpoint up to ``horizon``.
    """

    def __init__(
        self,
        sim: Simulator,
        network: FlowNetwork,
        name: str,
        src: str,
        dst: str,
        schedule: StepFunction,
        horizon: float,
    ):
        if horizon <= 0:
            raise WorkloadError(f"horizon must be positive, got {horizon}")
        self.sim = sim
        self.network = network
        self.name = name
        self.src = src
        self.dst = dst
        self.schedule = schedule
        self.horizon = float(horizon)
        self.applied: List[tuple] = []  # (time, rate) audit trail
        self._started = False

    def start(self) -> None:
        if self._started:
            raise WorkloadError(f"generator {self.name!r} started twice")
        self._started = True
        self._apply(self.schedule(self.sim.now))
        for t in self.schedule.change_times(self.sim.now, self.sim.now + self.horizon):
            self.sim.schedule_at(t, self._on_breakpoint, t)

    def _on_breakpoint(self, t: float) -> None:
        self._apply(self.schedule(t))

    def _apply(self, rate: float) -> None:
        self.network.set_cross_traffic(self.name, self.src, self.dst, rate)
        self.applied.append((self.sim.now, rate))

    def current_rate(self) -> float:
        return self.network.cross_traffic_rate(self.name)

"""Remos stand-in (substrate S4): the resource-query service.

The paper used Remos [16] to answer "what is the predicted bandwidth between
these two IPs?" and reported two operationally important behaviours (§5.3):

* the *first* query about a host pair takes minutes, because Remos must
  collect and analyse data — so the authors *pre-queried* pairs of interest;
* subsequent queries are fast.

:class:`RemosService` reproduces both: a cold query costs ``cold_delay``
simulated seconds, after which the pair stays *warm* for ``warm_ttl``
seconds, and warm queries cost ``warm_delay``.  Prediction values come from
the flow engine's hypothetical max-min share (see
:meth:`repro.net.flows.FlowNetwork.predicted_bandwidth`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.net.flows import FlowNetwork
from repro.sim.kernel import Event, Simulator

__all__ = ["RemosService", "RemosStats"]


def _pair(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


@dataclass
class RemosStats:
    """Counters for reporting and the A3 ablation."""

    queries: int = 0
    cold_queries: int = 0
    total_latency: float = 0.0

    @property
    def warm_queries(self) -> int:
        return self.queries - self.cold_queries

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.queries if self.queries else 0.0


class RemosService:
    """Bandwidth prediction with cold-start collection delay and caching."""

    def __init__(
        self,
        sim: Simulator,
        network: FlowNetwork,
        cold_delay: float = 90.0,
        warm_delay: float = 0.5,
        warm_ttl: float = 3600.0,
    ):
        if cold_delay < 0 or warm_delay < 0 or warm_ttl <= 0:
            raise ValueError("remos delays must be >= 0 and warm_ttl > 0")
        self.sim = sim
        self.network = network
        self.cold_delay = float(cold_delay)
        self.warm_delay = float(warm_delay)
        self.warm_ttl = float(warm_ttl)
        self._warm_until: Dict[Tuple[str, str], float] = {}
        self.stats = RemosStats()

    # -- query API -----------------------------------------------------------
    def is_warm(self, a: str, b: str) -> bool:
        expiry = self._warm_until.get(_pair(a, b))
        return expiry is not None and self.sim.now <= expiry

    def query_delay(self, a: str, b: str) -> float:
        """Latency the next ``get_flow(a, b)`` call would incur."""
        return self.warm_delay if self.is_warm(a, b) else self.cold_delay

    def get_flow(self, src: str, dst: str) -> Event:
        """Asynchronous ``remos_get_flow``: event yielding predicted bits/s.

        The prediction is sampled at *answer* time (after the query delay),
        matching a measurement infrastructure that reports current state.
        """
        delay = self.query_delay(src, dst)
        self.stats.queries += 1
        if delay == self.cold_delay and self.cold_delay > self.warm_delay:
            self.stats.cold_queries += 1
        self.stats.total_latency += delay
        self._warm_until[_pair(src, dst)] = self.sim.now + delay + self.warm_ttl
        ev = Event(self.sim)
        self.sim.schedule(delay, self._answer, ev, src, dst)
        return ev

    def _answer(self, ev: Event, src: str, dst: str) -> None:
        ev.succeed(self.network.predicted_bandwidth(src, dst))

    def measure_now(self, src: str, dst: str) -> float:
        """Instantaneous prediction without protocol delay.

        Used by the metrics sampler (the experimenter's out-of-band view for
        Figures 10/12) — *not* by the adaptation loop, which must pay
        :meth:`get_flow`'s latency like the paper's framework did.
        """
        return self.network.predicted_bandwidth(src, dst)

    # -- pre-querying (§5.3) ---------------------------------------------------
    def prewarm(self, pairs: Iterable[Tuple[str, str]]) -> int:
        """Mark host pairs warm without paying the cold delay in-run.

        Models the paper's fix: "we pre-queried Remos so that subsequent
        queries were much faster."  Returns the number of pairs warmed.
        """
        n = 0
        for a, b in pairs:
            self._warm_until[_pair(a, b)] = self.sim.now + self.warm_ttl
            n += 1
        return n

    def prewarm_all_hosts(self) -> int:
        """Prewarm every host pair in the topology."""
        hosts = [n.name for n in self.network.topology.hosts]
        return self.prewarm(
            (a, b) for i, a in enumerate(hosts) for b in hosts[i + 1:]
        )

"""Deterministic shortest-path routing.

Hop-count shortest paths with lexicographic tie-breaking, computed by BFS
and cached per topology version.  The experiment's testbed is static, so
routes are effectively computed once.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.errors import NoRouteError
from repro.net.topology import Link, Topology

__all__ = ["RoutingTable"]


class RoutingTable:
    """All-pairs shortest paths over a :class:`Topology`."""

    def __init__(self, topology: Topology):
        self.topology = topology
        self._version = -1
        self._parent: Dict[str, Dict[str, Optional[str]]] = {}

    def _refresh(self) -> None:
        if self._version == self.topology.version:
            return
        self._parent = {}
        for node in self.topology.nodes:
            self._parent[node.name] = self._bfs(node.name)
        self._version = self.topology.version

    def _bfs(self, source: str) -> Dict[str, Optional[str]]:
        """Parent pointers for shortest paths from ``source``.

        Neighbors are explored in sorted order (Topology keeps adjacency
        sorted), so equal-length paths resolve identically on every run.
        """
        parent: Dict[str, Optional[str]] = {source: None}
        frontier = deque([source])
        while frontier:
            u = frontier.popleft()
            for v in self.topology.neighbors(u):
                if v not in parent:
                    parent[v] = u
                    frontier.append(v)
        return parent

    def path(self, src: str, dst: str) -> List[str]:
        """Node sequence from ``src`` to ``dst`` inclusive.

        Raises :class:`NoRouteError` when unreachable.  A self-path is
        ``[src]`` (co-located entities talk through local IPC: no links).
        """
        self.topology.node(src)
        self.topology.node(dst)
        if src == dst:
            return [src]
        self._refresh()
        parents = self._parent[src]
        if dst not in parents:
            raise NoRouteError(f"no route from {src!r} to {dst!r}")
        # Walk back from dst to src.
        rev = [dst]
        while rev[-1] != src:
            nxt = parents[rev[-1]]
            assert nxt is not None
            rev.append(nxt)
        return list(reversed(rev))

    def links_on_path(self, src: str, dst: str) -> List[Link]:
        nodes = self.path(src, dst)
        return [self.topology.link(a, b) for a, b in zip(nodes, nodes[1:])]

    def hop_count(self, src: str, dst: str) -> int:
        return len(self.path(src, dst)) - 1

"""Fluid-flow transfers with max-min fair bandwidth allocation.

Every active transfer is a *fluid flow* along its routed path.  Whenever the
flow set or a demand changes, the engine re-solves a two-tier allocation:

1. **priority (cross-traffic) flows** take their demanded rate first, up to
   link capacity.  The paper's competition program could starve application
   traffic to ~10 Kbps on a 10 Mbps network, so competition must *not*
   yield fairly — it behaves like unresponsive UDP blasting;
2. **elastic flows** (application transfers) then share the residual
   capacity of every link max-min fairly (progressive filling, honoring
   optional per-flow caps).

Between recomputations rates are constant, so completion times are exact and
the whole simulation stays deterministic.  This reproduces what the paper's
testbed provides to the adaptation loop: path transfer times and available
bandwidth under competition.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.errors import NetworkError
from repro.net.routing import RoutingTable
from repro.net.topology import Link, Topology
from repro.sim.kernel import Event, Simulator
from repro.util.ids import IdGenerator

__all__ = ["Flow", "FlowNetwork"]

_EPS_BW = 1e-9  # bits/s below which a share is considered zero
_EPS_BITS = 1e-3  # residual bits considered "transferred"


class Flow:
    """One fluid flow.

    ``cap`` is ``None`` for elastic flows; cross traffic sets a demand cap.
    ``persistent`` flows never complete (competition sources).
    """

    __slots__ = (
        "fid",
        "src",
        "dst",
        "links",
        "size_bits",
        "remaining_bits",
        "rate",
        "cap",
        "persistent",
        "priority",
        "done",
        "started_at",
        "_last_advance",
    )

    def __init__(
        self,
        fid: str,
        src: str,
        dst: str,
        links: List[Link],
        size_bits: float,
        done: Optional[Event],
        cap: Optional[float] = None,
        persistent: bool = False,
        priority: bool = False,
        now: float = 0.0,
    ):
        self.fid = fid
        self.src = src
        self.dst = dst
        self.links = links
        self.size_bits = float(size_bits)
        self.remaining_bits = float(size_bits)
        self.rate = 0.0
        self.cap = cap
        self.persistent = persistent
        self.priority = priority
        self.done = done
        self.started_at = now
        self._last_advance = now

    def advance(self, now: float) -> None:
        """Account for bits moved since the last advance at current rate."""
        dt = now - self._last_advance
        if dt > 0 and not self.persistent:
            self.remaining_bits = max(0.0, self.remaining_bits - dt * self.rate)
        self._last_advance = now

    @property
    def finished(self) -> bool:
        return not self.persistent and self.remaining_bits <= _EPS_BITS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "xtraffic" if self.persistent else "xfer"
        return (
            f"<Flow {self.fid} {kind} {self.src}->{self.dst} "
            f"rate={self.rate:.0f}bps remaining={self.remaining_bits:.0f}b>"
        )


class FlowNetwork:
    """Manages flows over a topology and keeps allocations max-min fair."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        local_bps: float = 1e9,
    ):
        self.sim = sim
        self.topology = topology
        self.routing = RoutingTable(topology)
        self.local_bps = float(local_bps)  # co-located endpoints (same machine)
        self._flows: Dict[str, Flow] = {}
        self._xtraffic: Dict[str, Flow] = {}  # name -> persistent flow
        self._ids = IdGenerator()
        self._epoch = 0
        self.completed_transfers = 0
        self.total_bits_delivered = 0.0

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def transfer(self, src: str, dst: str, nbytes: float) -> Event:
        """Start moving ``nbytes`` from ``src`` to ``dst``.

        Returns an event that succeeds (value = the Flow) on completion.
        Co-located endpoints use a fast local channel instead of the net.
        """
        return self.start_transfer(src, dst, nbytes)[0]

    def start_transfer(
        self, src: str, dst: str, nbytes: float
    ) -> Tuple[Event, Optional[Flow]]:
        """Like :meth:`transfer` but also returns the Flow handle.

        The handle supports :meth:`cancel` (used when a moved client's
        pending responses are purged); it is None for co-located endpoints
        and zero-byte transfers, which cannot be cancelled.
        """
        if nbytes < 0:
            raise NetworkError(f"negative transfer size {nbytes}")
        done = Event(self.sim)
        links = self.routing.links_on_path(src, dst)
        fid = self._ids.next("flow")
        flow = Flow(fid, src, dst, links, nbytes * 8.0, done, now=self.sim.now)
        if not links:
            # Same machine: constant local bandwidth, not part of fair sharing.
            flow.rate = self.local_bps
            delay = flow.remaining_bits / self.local_bps if nbytes else 0.0
            self.sim.schedule(delay, self._complete_local, flow)
            return done, None
        if nbytes == 0:
            self.sim.schedule(0.0, self._complete, flow)
            return done, None
        self._flows[fid] = flow
        self.recompute()
        return done, flow

    def cancel(self, flow: Flow) -> bool:
        """Abort an in-flight transfer; its done-event fails.

        Returns False if the flow already completed or was cancelled.
        """
        if flow.fid not in self._flows:
            return False
        del self._flows[flow.fid]
        if flow.done is not None and not flow.done.triggered:
            flow.done.fail(NetworkError(f"transfer {flow.fid} cancelled"))
        self.recompute()
        return True

    def _complete_local(self, flow: Flow) -> None:
        flow.remaining_bits = 0.0
        self._finish(flow)

    def _complete(self, flow: Flow) -> None:
        self._flows.pop(flow.fid, None)
        self._finish(flow)
        self.recompute()

    def _finish(self, flow: Flow) -> None:
        self.completed_transfers += 1
        if not flow.persistent and math.isfinite(flow.size_bits):
            self.total_bits_delivered += flow.size_bits
        if flow.done is not None and not flow.done.triggered:
            flow.done.succeed(flow)

    # ------------------------------------------------------------------
    # Cross traffic (competition)
    # ------------------------------------------------------------------
    def set_cross_traffic(self, name: str, src: str, dst: str, rate_bps: float) -> None:
        """Create/update a persistent competing flow demanding ``rate_bps``.

        A rate of 0 removes the competitor.  Competition is *unresponsive*
        (priority tier): it takes its full demand before elastic application
        flows share what remains — matching the paper's competition program,
        which could drive residual path bandwidth down to ~10 Kbps.
        """
        if rate_bps < 0:
            raise NetworkError(f"negative cross-traffic rate {rate_bps}")
        existing = self._xtraffic.get(name)
        if rate_bps == 0:
            if existing is not None:
                del self._xtraffic[name]
                self._flows.pop(existing.fid, None)
                self.recompute()
            return
        if existing is not None:
            if existing.src != src or existing.dst != dst:
                raise NetworkError(
                    f"cross-traffic {name!r} endpoints changed; remove it first"
                )
            existing.cap = float(rate_bps)
        else:
            links = self.routing.links_on_path(src, dst)
            if not links:
                raise NetworkError("cross traffic requires distinct endpoints")
            fid = self._ids.next("xtraffic")
            flow = Flow(
                fid, src, dst, links, math.inf, None,
                cap=float(rate_bps), persistent=True, priority=True,
                now=self.sim.now,
            )
            self._flows[fid] = flow
            self._xtraffic[name] = flow
        self.recompute()

    def cross_traffic_rate(self, name: str) -> float:
        flow = self._xtraffic.get(name)
        return flow.cap if flow is not None else 0.0

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def recompute(self) -> None:
        """Re-solve the max-min allocation and reschedule completions."""
        now = self.sim.now
        finished: List[Flow] = []
        for flow in self._flows.values():
            flow.advance(now)
            if flow.finished:
                finished.append(flow)
        for flow in finished:
            self._flows.pop(flow.fid, None)
        self._waterfill()
        self._epoch += 1
        epoch = self._epoch
        for flow in self._flows.values():
            if flow.persistent or flow.rate <= _EPS_BW:
                continue
            eta = flow.remaining_bits / flow.rate
            self.sim.schedule(eta, self._maybe_complete, flow.fid, epoch)
        # Fire completions after rates settle (callbacks may add new flows).
        for flow in finished:
            self._finish(flow)

    def _maybe_complete(self, fid: str, epoch: int) -> None:
        if epoch != self._epoch:
            return  # allocation changed since this completion was projected
        flow = self._flows.get(fid)
        if flow is None:
            return
        flow.advance(self.sim.now)
        if flow.finished or flow.rate <= _EPS_BW:
            self._complete(flow)
        else:
            # float drift: reschedule the residual sliver
            self.sim.schedule(flow.remaining_bits / flow.rate, self._maybe_complete,
                              fid, epoch)

    def _waterfill(self) -> None:
        """Two-tier allocation: priority demands first, then max-min fill."""
        flows = [self._flows[k] for k in sorted(self._flows)]
        if not flows:
            return
        residual: Dict[Tuple[str, str], float] = {}
        on_link: Dict[Tuple[str, str], List[Flow]] = {}
        for f in flows:
            f.rate = 0.0
            for link in f.links:
                residual.setdefault(link.key, link.capacity)
                on_link.setdefault(link.key, []).append(f)

        # Tier 1: unresponsive competition takes its demand up front.
        elastic: List[Flow] = []
        for f in flows:
            if not f.priority:
                elastic.append(f)
                continue
            take = min(f.cap if f.cap is not None else math.inf,
                       min(residual[link.key] for link in f.links))
            take = max(0.0, take)
            f.rate = take
            for link in f.links:
                residual[link.key] -= take

        # Tier 2: progressive filling of elastic flows over the residual.
        unfrozen = {f.fid: f for f in elastic}
        headroom = {f.fid: (f.cap if f.cap is not None else math.inf) for f in elastic}

        while unfrozen:
            # Largest uniform increment every unfrozen flow can take.
            inc = math.inf
            for key, members in on_link.items():
                n = sum(1 for m in members if m.fid in unfrozen)
                if n:
                    inc = min(inc, residual[key] / n)
            for fid in unfrozen:
                inc = min(inc, headroom[fid])
            if not math.isfinite(inc):
                break  # unconstrained (cannot happen: flows have links)
            if inc > _EPS_BW:
                for fid, f in unfrozen.items():
                    f.rate += inc
                    headroom[fid] -= inc
                for key, members in on_link.items():
                    n = sum(1 for m in members if m.fid in unfrozen)
                    residual[key] -= inc * n

            # Freeze exactly the flows whose constraint binds (a saturated
            # link or exhausted cap) and keep filling the others — a flow
            # pinned at zero must not stall its peers.
            frozen_now: List[str] = []
            for key, members in on_link.items():
                if residual[key] <= _EPS_BW:
                    frozen_now.extend(m.fid for m in members if m.fid in unfrozen)
            for fid in list(unfrozen):
                if headroom[fid] <= _EPS_BW:
                    frozen_now.append(fid)
            if not frozen_now:
                break  # numerically stuck; accept current allocation
            for fid in frozen_now:
                unfrozen.pop(fid, None)

    # ------------------------------------------------------------------
    # Measurement (ground truth for Remos and the figures)
    # ------------------------------------------------------------------
    @property
    def flows(self) -> List[Flow]:
        return [self._flows[k] for k in sorted(self._flows)]

    @property
    def active_transfers(self) -> List[Flow]:
        return [f for f in self.flows if not f.persistent]

    def link_load(self, a: str, b: str) -> float:
        """Sum of current flow rates crossing link (a, b), bits/s."""
        link = self.topology.link(a, b)
        return sum(f.rate for f in self._flows.values() if link in f.links)

    def link_utilization(self, a: str, b: str) -> float:
        link = self.topology.link(a, b)
        return self.link_load(a, b) / link.capacity

    def residual_bandwidth(self, src: str, dst: str) -> float:
        """Unused capacity along the path (min over links)."""
        links = self.routing.links_on_path(src, dst)
        if not links:
            return self.local_bps
        return max(
            0.0,
            min(link.capacity - self.link_load(link.a, link.b) for link in links),
        )

    def predicted_bandwidth(self, src: str, dst: str) -> float:
        """Rate a *new* elastic flow would receive (hypothetical max-min).

        This is Remos's "predicted bandwidth" semantics: it accounts both
        for idle capacity and for the fair share a newcomer would squeeze
        out of existing elastic flows — never zero on a live path.
        """
        links = self.routing.links_on_path(src, dst)
        if not links:
            return self.local_bps
        probe = Flow("__probe__", src, dst, links, math.inf, None,
                     persistent=True, now=self.sim.now)
        saved_rates = {f.fid: f.rate for f in self._flows.values()}
        self._flows[probe.fid] = probe
        try:
            self._waterfill()
            return probe.rate
        finally:
            del self._flows[probe.fid]
            for fid, r in saved_rates.items():
                if fid in self._flows:
                    self._flows[fid].rate = r

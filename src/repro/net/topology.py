"""Network topology: hosts, routers, and capacity links.

Links are undirected with a single shared capacity (all flows crossing the
link in either direction share it).  This matches the paper's shared-medium
10 Mbps testbed closely enough: the interesting contention is response and
competition traffic flowing the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import NetworkError

__all__ = ["Node", "Link", "Topology"]


@dataclass(frozen=True)
class Node:
    """A network endpoint: ``kind`` is ``"host"`` or ``"router"``."""

    name: str
    kind: str = "host"

    def __post_init__(self) -> None:
        if self.kind not in ("host", "router"):
            raise NetworkError(f"node kind must be 'host' or 'router', got {self.kind!r}")
        if not self.name:
            raise NetworkError("node name must be non-empty")


def _canon(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


@dataclass
class Link:
    """Undirected link with capacity in bits/second.

    ``capacity`` may be changed at runtime (tests use this); the flow engine
    must be told to recompute afterwards.
    """

    a: str
    b: str
    capacity: float

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise NetworkError(f"self-link on {self.a!r}")
        if self.capacity <= 0:
            raise NetworkError(f"link capacity must be positive, got {self.capacity}")
        self.a, self.b = _canon(self.a, self.b)

    @property
    def key(self) -> Tuple[str, str]:
        return (self.a, self.b)

    def other(self, node: str) -> str:
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise NetworkError(f"{node!r} is not an endpoint of link {self.key}")

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.a}--{self.b} @ {self.capacity:.0f}bps)"


class Topology:
    """A mutable undirected graph of :class:`Node` and :class:`Link`."""

    def __init__(self, name: str = "net"):
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._adj: Dict[str, List[str]] = {}
        self.version = 0  # bumped on structural change; routing caches key on it

    # -- construction ---------------------------------------------------------
    def add_node(self, name: str, kind: str = "host") -> Node:
        if name in self._nodes:
            raise NetworkError(f"duplicate node {name!r}")
        node = Node(name, kind)
        self._nodes[name] = node
        self._adj[name] = []
        self.version += 1
        return node

    def add_host(self, name: str) -> Node:
        return self.add_node(name, "host")

    def add_router(self, name: str) -> Node:
        return self.add_node(name, "router")

    def add_link(self, a: str, b: str, capacity: float) -> Link:
        for n in (a, b):
            if n not in self._nodes:
                raise NetworkError(f"unknown node {n!r}; add nodes before links")
        key = _canon(a, b)
        if key in self._links:
            raise NetworkError(f"duplicate link {key}")
        link = Link(a, b, float(capacity))
        self._links[key] = link
        self._adj[a].append(b)
        self._adj[b].append(a)
        # Deterministic neighbor order regardless of insertion order.
        self._adj[a].sort()
        self._adj[b].sort()
        self.version += 1
        return link

    # -- queries ---------------------------------------------------------------
    @property
    def nodes(self) -> List[Node]:
        return [self._nodes[k] for k in sorted(self._nodes)]

    @property
    def links(self) -> List[Link]:
        return [self._links[k] for k in sorted(self._links)]

    @property
    def hosts(self) -> List[Node]:
        return [n for n in self.nodes if n.kind == "host"]

    @property
    def routers(self) -> List[Node]:
        return [n for n in self.nodes if n.kind == "router"]

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def link(self, a: str, b: str) -> Link:
        try:
            return self._links[_canon(a, b)]
        except KeyError:
            raise NetworkError(f"no link between {a!r} and {b!r}") from None

    def has_link(self, a: str, b: str) -> bool:
        return _canon(a, b) in self._links

    def neighbors(self, name: str) -> List[str]:
        if name not in self._adj:
            raise NetworkError(f"unknown node {name!r}")
        return list(self._adj[name])

    def degree(self, name: str) -> int:
        return len(self._adj.get(name, ()))

    def validate(self) -> None:
        """Check structural sanity: connected, hosts have degree >= 1."""
        if not self._nodes:
            raise NetworkError("empty topology")
        # connectivity via BFS from an arbitrary node
        start = next(iter(sorted(self._nodes)))
        seen = {start}
        frontier = [start]
        while frontier:
            nxt: List[str] = []
            for u in frontier:
                for v in self._adj[u]:
                    if v not in seen:
                        seen.add(v)
                        nxt.append(v)
            frontier = nxt
        missing = sorted(set(self._nodes) - seen)
        if missing:
            raise NetworkError(f"topology is disconnected; unreachable: {missing}")

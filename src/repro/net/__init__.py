"""Simulated network (substrate S3) and Remos stand-in (substrate S4).

* :mod:`repro.net.topology` — nodes (hosts/routers) and capacity links;
* :mod:`repro.net.routing` — deterministic shortest-path routing;
* :mod:`repro.net.flows` — fluid transfers with max-min fair bandwidth
  sharing and rate-capped cross traffic;
* :mod:`repro.net.traffic` — scheduled competition generators (Figure 7);
* :mod:`repro.net.remos` — bandwidth query service with cold-start delay,
  caching, and pre-querying (the paper's Remos observations).
"""

from repro.net.topology import Node, Link, Topology
from repro.net.routing import RoutingTable
from repro.net.flows import Flow, FlowNetwork
from repro.net.traffic import CrossTrafficGenerator
from repro.net.remos import RemosService

__all__ = [
    "Node",
    "Link",
    "Topology",
    "RoutingTable",
    "Flow",
    "FlowNetwork",
    "CrossTrafficGenerator",
    "RemosService",
]

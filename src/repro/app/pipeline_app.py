"""A simulated batch-pipeline application (runtime layer).

The counterpart of :class:`~repro.app.system.GridApplication` for the
:mod:`repro.styles.pipeline` style: a linear chain of filter stages, each
with a bounded worker pool (``width``) and a FIFO backlog.  Items enter at
the first stage, are processed for ``service_time`` seconds by one worker,
and flow downstream; the last stage completes them.

The one runtime *change* operator the style needs is :meth:`set_width` —
the equivalent of Table 1's ``activateServer`` for this application —
which the pipeline translator invokes when a ``widenStage``/``narrowStage``
intent commits.  Widening pumps the backlog immediately; narrowing lets
excess in-flight work drain naturally.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import EnvironmentError_
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace

__all__ = ["PipelineStageRuntime", "PipelineApplication"]


class PipelineStageRuntime:
    """One filter stage: a worker pool draining a FIFO backlog."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        width: int,
        service_time: float,
    ):
        if width < 1:
            raise EnvironmentError_(f"stage {name}: width must be >= 1")
        if service_time <= 0:
            raise EnvironmentError_(f"stage {name}: service_time must be positive")
        self.sim = sim
        self.name = name
        self.width = int(width)
        self.service_time = float(service_time)
        self.queue: Deque[int] = deque()
        self.busy = 0
        self.processed = 0
        self.downstream: Optional["PipelineStageRuntime"] = None
        self._complete = None  # set on the final stage by the application

    @property
    def backlog(self) -> int:
        """Items waiting (not counting those being processed)."""
        return len(self.queue)

    @property
    def service_rate(self) -> float:
        """Current drain capacity, items/second."""
        return self.width / self.service_time

    def accept(self, item: int) -> None:
        self.queue.append(item)
        self._pump()

    def set_width(self, width: int) -> None:
        if width < 1:
            raise EnvironmentError_(f"stage {self.name}: width must be >= 1")
        self.width = int(width)
        self._pump()  # widening frees capacity for queued items right now

    def _pump(self) -> None:
        while self.busy < self.width and self.queue:
            item = self.queue.popleft()
            self.busy += 1
            self.sim.schedule(self.service_time, self._finish, item)

    def _finish(self, item: int) -> None:
        self.busy -= 1
        self.processed += 1
        if self.downstream is not None:
            self.downstream.accept(item)
        elif self._complete is not None:
            self._complete(item)
        self._pump()


class PipelineApplication:
    """A linear pipeline of stages plus issue/completion bookkeeping."""

    def __init__(
        self,
        sim: Simulator,
        stages: Sequence[Tuple[str, int, float]],
        trace: Optional[Trace] = None,
    ):
        if len(stages) < 2:
            raise EnvironmentError_("a pipeline needs at least two stages")
        self.sim = sim
        self.trace = trace if trace is not None else Trace()
        self._stages: Dict[str, PipelineStageRuntime] = {}
        self.stage_order: List[str] = []
        previous: Optional[PipelineStageRuntime] = None
        for name, width, service_time in stages:
            if name in self._stages:
                raise EnvironmentError_(f"duplicate stage {name}")
            stage = PipelineStageRuntime(sim, name, width, service_time)
            self._stages[name] = stage
            self.stage_order.append(name)
            if previous is not None:
                previous.downstream = stage
            previous = stage
        assert previous is not None
        previous._complete = self._on_complete
        self.issued = 0
        self.completed = 0
        self._next_item = 0

    # -- item flow ---------------------------------------------------------
    def submit(self) -> int:
        """Inject one item at the head of the pipeline."""
        self._next_item += 1
        self.issued += 1
        self._stages[self.stage_order[0]].accept(self._next_item)
        return self._next_item

    def _on_complete(self, item: int) -> None:
        self.completed += 1

    # -- queries -----------------------------------------------------------
    def stage(self, name: str) -> PipelineStageRuntime:
        try:
            return self._stages[name]
        except KeyError:
            raise EnvironmentError_(f"no stage {name}") from None

    @property
    def stages(self) -> List[PipelineStageRuntime]:
        return [self._stages[n] for n in self.stage_order]

    def backlog(self, name: str) -> int:
        return self.stage(name).backlog

    @property
    def in_flight(self) -> int:
        """Items inside the pipeline (queued or being processed)."""
        return self.issued - self.completed

    def total_width(self) -> int:
        return sum(s.width for s in self.stages)

    # -- runtime change operator (the pipeline's Table 1) ------------------
    def set_width(self, name: str, width: int) -> int:
        """Resize a stage's worker pool; returns the old width."""
        stage = self.stage(name)
        old = stage.width
        stage.set_width(width)
        self.trace.emit(
            self.sim.now, "runtime.op.setStageWidth",
            stage=name, frm=old, to=stage.width,
        )
        return old

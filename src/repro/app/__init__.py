"""The client/server grid application (substrate S5) and the environment
manager exposing the paper's Table 1 operators (substrate S6).

Architecture (paper §1 example and §5 experiment):

* :class:`~repro.app.client.Client` — issues requests open-loop on a rate
  schedule; responses return directly from servers;
* :class:`~repro.app.request_queue.RequestQueueService` — the "entity that
  splits the requests into queues, corresponding to the client's server
  group" (one logical FIFO per server group);
* :class:`~repro.app.server.Server` — pulls requests FIFO from its group's
  queue, computes, and streams the response to the client over the
  simulated network (one in-order stream per destination);
* :class:`~repro.app.system.GridApplication` — wiring, placement of
  entities onto testbed machines, and runtime statistics;
* :class:`~repro.app.env_manager.EnvironmentManager` — Table 1.
"""

from repro.app.messages import Request
from repro.app.client import Client
from repro.app.request_queue import RequestQueueService
from repro.app.server import Server
from repro.app.server_group import ServerGroupRuntime
from repro.app.system import GridApplication
from repro.app.env_manager import EnvironmentManager

__all__ = [
    "Request",
    "Client",
    "RequestQueueService",
    "Server",
    "ServerGroupRuntime",
    "GridApplication",
    "EnvironmentManager",
]

"""A live asyncio application for the wall-clock execution plane.

Every other module in ``repro.app`` is a *simulated* application; this
one actually runs: :class:`AsyncWorkerPoolApp` serves a minimal HTTP
protocol on a real socket from its own asyncio event loop (on a daemon
thread), bounding concurrent request service with a **resizable worker
pool** — the live analogue of the task farm's pool width.  Requests
beyond the pool's capacity queue; the queue depth, pool occupancy, and
pool size are exported as plain-int metrics any thread may read, which
is exactly what the realtime plane's periodic probes sample.

The adaptation seam is :meth:`AsyncWorkerPoolApp.request_resize` — the
one thread-safe entry point the live translator calls when a committed
repair's ``addWorkers`` / ``removeWorkers`` intent actuates.  Resizing
up immediately admits queued requests; resizing down lets in-flight
requests finish and narrows admission from then on (no worker is ever
interrupted mid-request).

:class:`LoadGenerator` is the built-in ``wrk``-style driver: a fixed
number of **closed-loop** connections per phase, each issuing the next
request only after the previous response lands.  Closed-loop load keeps
socket use bounded and makes the latency story crisp: with ``C``
connections against a pool of ``n`` workers and service time ``s``,
steady-state round-trip time is ~``C * s / n`` — so growing the pool
during a burst is directly visible in client-side p95.

Latency is measured client-side against an injected
:class:`~repro.realtime.clock.Clock` — this module never reads the OS
clock itself (the determinism lint holds ``repro.app`` to that).
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from typing import Callable, Deque, List, Optional, Sequence, Tuple

from repro.realtime.clock import Clock

__all__ = ["AsyncWorkerPool", "AsyncWorkerPoolApp", "LoadGenerator", "Phase"]

#: one load phase: (name, closed-loop connections, duration seconds)
Phase = Tuple[str, int, float]

_RESPONSE = (
    b"HTTP/1.1 200 OK\r\n"
    b"Content-Type: text/plain\r\n"
    b"Content-Length: 3\r\n"
    b"Connection: keep-alive\r\n"
    b"\r\n"
    b"ok\n"
)


class AsyncWorkerPool:
    """A resizable admission gate living inside one asyncio loop.

    Like a semaphore whose value can change while tasks wait on it:
    ``acquire`` admits the caller while fewer than ``size`` slots are
    busy and queues a future otherwise; ``set_size`` re-pumps the queue
    so a grow admits waiters immediately and a shrink simply stops
    back-filling slots as they free.  All methods must run on the
    owning loop.
    """

    def __init__(self, size: int):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.size = int(size)
        self.busy = 0
        self.max_size_seen = int(size)
        self._waiters: Deque[asyncio.Future] = deque()

    @property
    def queue_depth(self) -> int:
        return len(self._waiters)

    def _pump(self) -> None:
        while self._waiters and self.busy < self.size:
            waiter = self._waiters.popleft()
            if not waiter.done():
                self.busy += 1
                waiter.set_result(None)

    async def acquire(self) -> None:
        if self.busy < self.size:
            self.busy += 1
            return
        waiter = asyncio.get_running_loop().create_future()
        self._waiters.append(waiter)
        await waiter

    def release(self) -> None:
        self.busy -= 1
        self._pump()

    def set_size(self, size: int) -> None:
        self.size = max(1, int(size))
        if self.size > self.max_size_seen:
            self.max_size_seen = self.size
        self._pump()


class AsyncWorkerPoolApp:
    """The live application: an HTTP server gated by a resizable pool.

    ``start()`` spins up an event loop on a daemon thread, binds the
    server (port 0 picks a free port, published as ``.port`` once the
    ready event fires), and serves until ``stop()``.  Metric reads
    (``pool_size``, ``queue_depth``, ``busy``, ``completed``) are plain
    int reads, safe from any thread; the only cross-thread *mutation*
    is :meth:`request_resize`, which hops onto the loop.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        service_time: float = 0.05,
        pool_size: int = 2,
    ):
        self.host = host
        self.port = int(port)
        self.service_time = float(service_time)
        self.initial_pool_size = int(pool_size)
        self.completed = 0
        self.resizes: List[int] = []
        self._pool: Optional[AsyncWorkerPool] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- metrics (any thread) ----------------------------------------------
    @property
    def pool_size(self) -> int:
        return self._pool.size if self._pool is not None else self.initial_pool_size

    @property
    def peak_pool_size(self) -> int:
        if self._pool is None:
            return self.initial_pool_size
        return self._pool.max_size_seen

    @property
    def queue_depth(self) -> int:
        return self._pool.queue_depth if self._pool is not None else 0

    @property
    def busy(self) -> int:
        return self._pool.busy if self._pool is not None else 0

    def utilization(self) -> float:
        pool = self._pool
        if pool is None or pool.size <= 0:
            return 0.0
        return min(1.0, pool.busy / pool.size)

    # -- adaptation seam (any thread) --------------------------------------
    def request_resize(self, size: int) -> None:
        """Ask the pool to resize; safe from any thread."""
        loop = self._loop
        if loop is None:
            raise RuntimeError("application is not running")
        self.resizes.append(int(size))
        loop.call_soon_threadsafe(self._pool.set_size, int(size))

    # -- lifecycle ---------------------------------------------------------
    def start(self, ready_timeout: float = 10.0) -> None:
        if self._thread is not None:
            raise RuntimeError("application already started")
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-live-app", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(ready_timeout):
            raise RuntimeError("application did not come up in time")
        if self._startup_error is not None:
            raise RuntimeError(f"application failed to start: {self._startup_error!r}")

    def stop(self, join_timeout: float = 5.0) -> None:
        loop, stop = self._loop, self._stop_event
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)
        if self._thread is not None:
            self._thread.join(timeout=join_timeout)
            self._thread = None

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface startup failures to start()
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._pool = AsyncWorkerPool(self.initial_pool_size)
        self._stop_event = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            server.close()
            await server.wait_closed()

    async def _handle(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if line in (b"\r\n", b"\n"):
                    continue  # stray blank between pipelined requests
                while True:  # drain headers up to the blank line
                    header = await reader.readline()
                    if header in (b"\r\n", b"\n", b""):
                        break
                await self._pool.acquire()
                try:
                    await asyncio.sleep(self.service_time)
                finally:
                    self._pool.release()
                self.completed += 1
                writer.write(_RESPONSE)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()


class LoadGenerator:
    """``wrk``-style closed-loop load: N persistent connections per phase.

    Each connection holds one socket open and issues requests serially
    — the next request leaves only when the previous response returns —
    so concurrency is exactly the phase's connection count and socket
    usage is bounded.  Per-request latency is measured client-side with
    the injected clock and recorded as ``(phase, seconds)``; an optional
    ``on_latency(phase, seconds)`` callback fans each sample out (the
    live demo pushes them into the realtime plane's ingest probe from
    here).
    """

    _REQUEST = b"GET / HTTP/1.1\r\nHost: live-demo\r\n\r\n"

    def __init__(
        self,
        host: str,
        port: int,
        clock: Clock,
        on_latency: Optional[Callable[[str, float], None]] = None,
    ):
        self.host = host
        self.port = int(port)
        self.clock = clock
        self.on_latency = on_latency
        self.samples: List[Tuple[str, float]] = []
        self.errors = 0

    def run(self, phases: Sequence[Phase]) -> List[Tuple[str, float]]:
        """Drive all phases back-to-back; blocks the calling thread."""
        asyncio.run(self._run_phases(list(phases)))
        return self.samples

    def latencies(self, phase: Optional[str] = None) -> List[float]:
        return [
            seconds
            for name, seconds in self.samples
            if phase is None or name == phase
        ]

    async def _run_phases(self, phases: List[Phase]) -> None:
        for name, connections, duration in phases:
            stop = asyncio.Event()
            tasks = [
                asyncio.create_task(self._connection(name, stop))
                for _ in range(int(connections))
            ]
            await asyncio.sleep(float(duration))
            stop.set()
            await asyncio.gather(*tasks, return_exceptions=True)

    async def _connection(self, phase: str, stop: asyncio.Event) -> None:
        try:
            reader, writer = await asyncio.open_connection(self.host, self.port)
        except OSError:
            self.errors += 1
            return
        try:
            while not stop.is_set():
                started = self.clock.elapsed()
                writer.write(self._REQUEST)
                await writer.drain()
                status = await reader.readline()
                if not status:
                    break
                length = 0
                while True:  # headers; remember Content-Length
                    header = await reader.readline()
                    if header in (b"\r\n", b"\n", b""):
                        break
                    key, _, value = header.partition(b":")
                    if key.strip().lower() == b"content-length":
                        length = int(value.strip())
                await reader.readexactly(length)
                elapsed = self.clock.elapsed() - started
                self.samples.append((phase, elapsed))
                if self.on_latency is not None:
                    self.on_latency(phase, elapsed)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            self.errors += 1
        finally:
            writer.close()

"""A simulated map/reduce job with a Zipf-skewed shuffle (runtime layer).

The counterpart of :class:`~repro.app.master_worker_app.MasterWorkerApplication`
for the :mod:`repro.styles.map_reduce` style: a mapper pool consumes
input records, the shuffle routes each record's key-group to the reducer
partition that owns it, and each reducer drains its partition queue with
a small worker pool.

Everything random about a record — its key-group, map demand, and
reduce demand — is drawn **at submission** from one seeded stream, so
control and adapted runs process the identical record set; adaptation
changes only *where* records queue and reduce.  Keys are drawn from a
Zipf distribution, so one key-group dominates the shuffle: the skew the
``skewedShuffle`` invariant exists to repair.

Two runtime change operators (this application's Table 1):

* :meth:`split_keys` — reassign the colder half of a partition's
  key-groups (by observed traffic) to another reducer.  Future records
  of the moved key-groups route to the new owner; already-queued records
  stay where they are.
* :meth:`steal_queued` — migrate the back half of a partition's queued
  records to another reducer's queue: the work-stealing palliative for
  an irreducibly hot key-group.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

import numpy as np

from repro.errors import EnvironmentError_
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace

__all__ = ["ShuffleRecord", "MapReduceApplication"]


@dataclass(frozen=True)
class ShuffleRecord:
    """One record: identity, submission time, key-group, drawn demands."""

    rid: int
    submitted: float
    key: int
    map_service: float
    reduce_service: float


class _Pool:
    """A FIFO queue draining into ``width`` interchangeable workers."""

    __slots__ = ("sim", "width", "queue", "running", "service_fn", "on_done")

    def __init__(self, sim: Simulator, width: int, service_fn, on_done):
        self.sim = sim
        self.width = int(width)
        self.queue: Deque[ShuffleRecord] = deque()
        self.running = 0
        self.service_fn = service_fn
        self.on_done = on_done

    def push(self, record: ShuffleRecord) -> None:
        self.queue.append(record)
        self._dispatch()

    def _dispatch(self) -> None:
        while self.running < self.width and self.queue:
            record = self.queue.popleft()
            self.running += 1
            self.sim.schedule(self.service_fn(record), self._finish, record)

    def _finish(self, record: ShuffleRecord) -> None:
        self.running -= 1
        self.on_done(record)
        self._dispatch()


class MapReduceApplication:
    """Mappers -> shuffle -> reducer partitions, with a hot key-group."""

    def __init__(
        self,
        sim: Simulator,
        mappers: int,
        reducers: int,
        keys: int,
        zipf_s: float,
        map_service: float,
        reduce_service: float,
        reducer_width: int,
        record_rng: np.random.Generator,
        trace: Optional[Trace] = None,
    ):
        if mappers < 1 or reducers < 2:
            raise EnvironmentError_(
                "a map/reduce job needs >= 1 mapper and >= 2 reducers"
            )
        if keys < reducers:
            raise EnvironmentError_("need at least one key-group per reducer")
        if map_service <= 0 or reduce_service <= 0:
            raise EnvironmentError_("service times must be positive")
        self.sim = sim
        self.trace = trace if trace is not None else Trace()
        self.reducer_names: List[str] = [f"R{i}" for i in range(reducers)]
        self.keys = int(keys)
        self.map_service = float(map_service)
        self.reduce_service = float(reduce_service)
        self._rng = record_rng
        # Zipf pmf over key-group ranks: weight(k) = (k+1)^-s, normalized.
        weights = np.arange(1, keys + 1, dtype=float) ** -float(zipf_s)
        self._cumulative = np.cumsum(weights / weights.sum())
        #: key-group -> owning reducer index (round-robin start)
        self.assignment: Dict[int, int] = {k: k % reducers for k in range(keys)}
        #: records observed per key-group (drives split_keys's cold half)
        self.key_traffic: Dict[int, int] = {k: 0 for k in range(keys)}
        self._mapper_pool = _Pool(sim, mappers, lambda r: r.map_service, self._shuffle)
        self._reducer_pools: List[_Pool] = [
            _Pool(sim, reducer_width, lambda r: r.reduce_service, self._reduced)
            for _ in range(reducers)
        ]
        self._next_rid = 0
        self.issued = 0
        self.mapped = 0
        self.completed = 0
        self.splits = 0
        self.steals = 0
        self.moved_keys = 0
        self.stolen_records = 0

    # -- record flow -------------------------------------------------------
    def submit(self) -> ShuffleRecord:
        """Inject one input record; all its draws happen now."""
        self._next_rid += 1
        u = float(self._rng.random())
        key = int(np.searchsorted(self._cumulative, u))
        record = ShuffleRecord(
            rid=self._next_rid,
            submitted=self.sim.now,
            key=min(key, self.keys - 1),
            map_service=float(self._rng.exponential(self.map_service)),
            reduce_service=float(self._rng.exponential(self.reduce_service)),
        )
        self.issued += 1
        self._mapper_pool.push(record)
        return record

    def _shuffle(self, record: ShuffleRecord) -> None:
        self.mapped += 1
        self.key_traffic[record.key] += 1
        target = self.assignment[record.key]
        self._reducer_pools[target].push(record)

    def _reduced(self, record: ShuffleRecord) -> None:
        self.completed += 1

    # -- queries -----------------------------------------------------------
    def reducer_index(self, name: str) -> int:
        try:
            return self.reducer_names.index(name)
        except ValueError:
            raise EnvironmentError_(f"no reducer {name!r}") from None

    def mapper_backlog(self) -> int:
        return len(self._mapper_pool.queue)

    def backlog(self, name: str) -> int:
        return len(self._reducer_pools[self.reducer_index(name)].queue)

    def total_backlog(self) -> int:
        return sum(len(pool.queue) for pool in self._reducer_pools)

    def share(self, name: str) -> float:
        """This partition's fraction of all queued shuffle work."""
        total = self.total_backlog()
        if total == 0:
            return 0.0
        return self.backlog(name) / total

    def key_count(self, name: str) -> int:
        index = self.reducer_index(name)
        return sum(1 for owner in self.assignment.values() if owner == index)

    def keys_of(self, name: str) -> List[int]:
        index = self.reducer_index(name)
        return [k for k, owner in self.assignment.items() if owner == index]

    @property
    def in_flight(self) -> int:
        return self.issued - self.completed

    # -- runtime change operators (this application's Table 1) -------------
    def split_keys(self, hot: str, dest: str) -> int:
        """Reassign the colder half of ``hot``'s key-groups to ``dest``.

        "Colder" by observed traffic, so the dominant key-group stays —
        the split sheds every key it can without moving the hot spot
        itself.  Returns the number of key-groups moved (0 when the
        partition is already a single key-group).
        """
        hot_index = self.reducer_index(hot)
        dest_index = self.reducer_index(dest)
        owned = sorted(self.keys_of(hot), key=lambda k: (self.key_traffic[k], k))
        if len(owned) <= 1:
            return 0
        moved = owned[: len(owned) // 2]
        for key in moved:
            self.assignment[key] = dest_index
        self.splits += 1
        self.moved_keys += len(moved)
        self.trace.emit(
            self.sim.now,
            "runtime.op.splitKeys",
            hot=hot,
            dest=dest,
            moved=len(moved),
            remaining=len(owned) - len(moved),
        )
        return len(moved)

    def steal_queued(self, hot: str, dest: str) -> int:
        """Migrate the back half of ``hot``'s queue to ``dest``.

        The front half keeps its position (those records are next to
        reduce anyway); the back half — the work that would otherwise
        wait longest — moves to the idle reducer.  Returns records moved.
        """
        hot_pool = self._reducer_pools[self.reducer_index(hot)]
        dest_pool = self._reducer_pools[self.reducer_index(dest)]
        count = len(hot_pool.queue) // 2
        if count == 0:
            return 0
        migrated = [hot_pool.queue.pop() for _ in range(count)]
        for record in reversed(migrated):
            dest_pool.push(record)
        self.steals += 1
        self.stolen_records += count
        self.trace.emit(
            self.sim.now,
            "runtime.op.stealQueued",
            hot=hot,
            dest=dest,
            moved=count,
        )
        return count

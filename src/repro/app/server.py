"""Replicated servers.

A server runs two decoupled stages:

* **service stage** — pull the oldest request from the group's FIFO queue,
  compute for ``base + per_byte * response_size`` seconds, hand the
  response to the send stage, repeat;
* **send stage** — stream responses back to clients over the simulated
  network, in order *per destination* (one connection per client, like one
  TCP stream each), with transfers to different clients proceeding
  concurrently.

Under bandwidth starvation to one client, that client's response stream
crawls and its backlog grows (the control run's latency explosion), while
the request queue — the paper's measured "server load" — only grows when
arrival rate exceeds the group's aggregate service rate (the stress phase).

``deactivateServer`` is graceful, matching Table 1's "signals that a server
should stop pulling requests": the current request finishes, queued
outgoing responses still drain, but nothing new is pulled.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set

from repro.app.messages import Request
from repro.errors import EnvironmentError_
from repro.net.flows import FlowNetwork
from repro.sim.kernel import Event, Simulator
from repro.sim.primitives import Store
from repro.sim.process import Interrupted, Process

__all__ = ["Server"]


class Server:
    """One replicated server process."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        machine: str,
        network: FlowNetwork,
        service_base: float = 0.10,
        service_per_byte: float = 7.5e-6,
    ):
        if service_base < 0 or service_per_byte < 0:
            raise ValueError("service-time parameters must be non-negative")
        self.sim = sim
        self.name = name
        self.machine = machine
        self.network = network
        self.service_base = float(service_base)
        self.service_per_byte = float(service_per_byte)

        self.active = False
        self.group: Optional[str] = None
        self._queue: Optional[Store] = None
        self._resolve_client: Optional[Callable[[str], "object"]] = None

        self.served = 0
        self.busy_time = 0.0
        self._active_time_acc = 0.0
        self._activated_at: Optional[float] = None
        self._process: Optional[Process] = None
        self._pending_get: Optional[Event] = None

        self._send_queues: Dict[str, Deque[Request]] = {}
        self._sending: Set[str] = set()
        self._inflight: Dict[str, object] = {}
        self.dropped = 0
        self._serve_listeners: List[Callable[[Request], None]] = []

    # -- wiring -----------------------------------------------------------------
    def bind_client_resolver(self, resolver: Callable[[str], "object"]) -> None:
        """Provide ``name -> Client`` resolution (set once by the system)."""
        self._resolve_client = resolver

    def connect(self, group: str, queue: Store) -> None:
        """Table 1 ``connectServer``: pull requests from ``queue``.

        Only allowed while inactive — the runtime reconnects servers between
        deactivation and (re)activation, exactly how the translator
        sequences it.
        """
        if self.active:
            raise EnvironmentError_(
                f"server {self.name} must be deactivated before reconnecting"
            )
        self.group = group
        self._queue = queue

    def on_serve(self, listener: Callable[[Request], None]) -> None:
        """Probe hook: called when a response is fully delivered."""
        self._serve_listeners.append(listener)

    # -- Table 1 activate/deactivate -------------------------------------------------
    def activate(self) -> None:
        """Begin pulling requests from the connected queue."""
        if self.active:
            raise EnvironmentError_(f"server {self.name} is already active")
        if self._queue is None or self._resolve_client is None:
            raise EnvironmentError_(f"server {self.name} is not connected/wired")
        self.active = True
        self._activated_at = self.sim.now
        self._process = Process(self.sim, self._run(), name=f"server.{self.name}")

    def deactivate(self) -> None:
        """Stop pulling requests (graceful; idempotent)."""
        if not self.active:
            return
        self.active = False
        if self._activated_at is not None:
            self._active_time_acc += self.sim.now - self._activated_at
            self._activated_at = None
        if self._pending_get is not None and self._queue is not None:
            # Waiting idle on the queue: withdraw and stop immediately.
            self._queue.cancel_get(self._pending_get)
            self._pending_get = None
            assert self._process is not None
            self._process.interrupt("deactivate")
        # Otherwise mid-service: the loop observes ``active`` and exits
        # after the current request; outgoing responses always drain.

    def crash(self) -> int:
        """Abrupt failure (the paper's "servers going down" fault class).

        Unlike graceful deactivation, a crash loses work: the request being
        computed (if any) never completes, queued and in-flight responses
        are dropped, and nothing drains.  The server can later be repaired
        and re-activated (``connect`` + ``activate``), modeling a restart.
        Returns the number of responses lost (excluding the in-service
        request, which is also lost but tracked by the caller via queues).
        """
        lost = 0
        if self.active:
            self.active = False
            if self._activated_at is not None:
                self._active_time_acc += self.sim.now - self._activated_at
                self._activated_at = None
            if self._pending_get is not None and self._queue is not None:
                self._queue.cancel_get(self._pending_get)
                self._pending_get = None
            if self._process is not None:
                self._process.kill()
                self._process = None
        for dest in list(self._send_queues):
            queue = self._send_queues.pop(dest)
            lost += len(queue)
        self.dropped += lost
        for dest, flow in list(self._inflight.items()):
            self.network.cancel(flow)  # the finished callback counts it
        self._sending.clear()
        return lost

    # -- service stage ---------------------------------------------------------------
    def service_time(self, response_size: float) -> float:
        """Compute time for a response of ``response_size`` bytes."""
        return self.service_base + self.service_per_byte * response_size

    def _run(self):
        assert self._queue is not None
        while self.active:
            get_ev = self._queue.get()
            self._pending_get = get_ev
            try:
                req: Request = yield get_ev
            except Interrupted:
                return  # deactivated while idle; get already cancelled
            self._pending_get = None
            req.dequeued_at = self.sim.now
            req.served_by = self.name
            span = self.service_time(req.response_size)
            yield self.sim.timeout(span)
            self.busy_time += span
            req.service_done_at = self.sim.now
            self.served += 1
            self._enqueue_send(req)

    # -- send stage -------------------------------------------------------------------
    def _enqueue_send(self, req: Request) -> None:
        dest = req.client
        self._send_queues.setdefault(dest, deque()).append(req)
        if dest not in self._sending:
            self._sending.add(dest)
            self._send_next(dest)

    def _send_next(self, dest: str) -> None:
        queue = self._send_queues.get(dest)
        if not queue:
            self._sending.discard(dest)
            self._inflight.pop(dest, None)
            return
        req = queue.popleft()
        assert self._resolve_client is not None
        client = self._resolve_client(dest)
        ev, flow = self.network.start_transfer(
            self.machine, client.machine, req.response_size
        )
        if flow is not None:
            self._inflight[dest] = flow

        def finished(e: Event, req: Request = req, dest: str = dest) -> None:
            self._inflight.pop(dest, None)
            if e.ok:
                client.deliver(req)
                for listener in self._serve_listeners:
                    listener(req)
            else:
                self.dropped += 1
            self._send_next(dest)

        ev.add_callback(finished)

    def purge_destination(self, dest: str) -> int:
        """Drop queued and in-flight responses for ``dest``.

        Called when a client is moved to another request queue: the old
        connection is torn down and undelivered responses on it are
        discarded (the translator's ``moveClient`` re-routes the client's
        communications).  Returns the number of responses dropped; the
        in-flight transfer, if any, is cancelled and counted by its own
        completion callback.
        """
        queue = self._send_queues.pop(dest, None)
        dropped = len(queue) if queue else 0
        self.dropped += dropped
        flow = self._inflight.get(dest)
        if flow is not None:
            # cancel() fails the transfer event; `finished` advances the
            # (now empty) queue and clears the sending flag.
            self.network.cancel(flow)
        elif dropped:
            self._sending.discard(dest)
        return dropped

    # -- statistics ----------------------------------------------------------------------
    def send_backlog(self, dest: Optional[str] = None) -> int:
        """Responses queued in the send stage (per destination or total).

        In-flight transfers are not counted; only waiting responses.
        """
        if dest is not None:
            return len(self._send_queues.get(dest, ()))
        return sum(len(q) for q in self._send_queues.values())

    def active_time(self, now: Optional[float] = None) -> float:
        total = self._active_time_acc
        if self._activated_at is not None:
            total += (self.sim.now if now is None else now) - self._activated_at
        return total

    def utilization(self, now: Optional[float] = None) -> float:
        """Fraction of active time spent computing (send stage excluded)."""
        span = self.active_time(now)
        return self.busy_time / span if span > 0 else 0.0

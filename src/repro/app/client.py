"""Clients: open-loop request sources with scheduled rates and sizes.

The paper controlled its experiment by seeding clients so that the request
sequence is identical in the control and adapted runs (§5.1).  Each client
owns a named random stream; rates and sizes are functions of *time*, so the
issued workload is byte-for-byte identical across runs regardless of how the
adaptation machinery reshapes service.

Clients are *open loop*: they do not wait for a response before issuing the
next request (the paper gives an aggregate arrival rate of ~6/s independent
of service behaviour).  Requests travel to the request-queue machine as a
fixed small control-latency hop — request payloads (0.5 KB) are ~2.5 % of
response payloads (20 KB), so their bandwidth is ignored; responses are the
only application load on the simulated network (documented in DESIGN.md §4).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.app.messages import Request
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.util.ids import IdGenerator
from repro.util.windows import SlidingWindow, StepFunction

__all__ = ["Client"]

SizeFn = Callable[[float, np.random.Generator], float]


class Client:
    """One request source.

    Parameters
    ----------
    rate:
        requests/second as a function of time (Figure 7's load schedule).
    size_fn:
        ``(time, rng) -> response bytes`` for each request.
    request_latency:
        fixed client -> request-queue control delay, seconds.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        machine: str,
        rate: StepFunction,
        size_fn: SizeFn,
        rng: np.random.Generator,
        request_size: float = 512.0,
        request_latency: float = 0.02,
        latency_horizon: float = 30.0,
    ):
        self.sim = sim
        self.name = name
        self.machine = machine
        self.rate = rate
        self.size_fn = size_fn
        self.rng = rng
        self.request_size = float(request_size)
        self.request_latency = float(request_latency)

        self.issued = 0
        self.received = 0
        self.completions: List[Tuple[float, float]] = []  # (time, latency)
        self.latency_window = SlidingWindow(latency_horizon)

        self._router: Optional[Callable[[Request], None]] = None
        self._ids = IdGenerator()
        self._process: Optional[Process] = None
        self._response_listeners: List[Callable[[Request], None]] = []
        self._request_listeners: List[Callable[[Request], None]] = []

    # -- wiring ---------------------------------------------------------------
    def connect(self, router: Callable[[Request], None]) -> None:
        """Attach the request-queue service that accepts this client's requests."""
        self._router = router

    def on_request(self, listener: Callable[[Request], None]) -> None:
        """Probe hook: called at every request issue."""
        self._request_listeners.append(listener)

    def on_response(self, listener: Callable[[Request], None]) -> None:
        """Probe hook: called at every completed response."""
        self._response_listeners.append(listener)

    # -- lifecycle --------------------------------------------------------------
    def start(self, horizon: float) -> Process:
        """Begin issuing requests until simulated ``horizon``."""
        if self._router is None:
            raise RuntimeError(f"client {self.name} not connected to a request queue")
        if self._process is not None:
            raise RuntimeError(f"client {self.name} already started")
        self._process = Process(self.sim, self._run(horizon), name=f"client.{self.name}")
        return self._process

    def _run(self, horizon: float):
        while True:
            rate = self.rate(self.sim.now)
            if rate <= 0.0:
                # Paused: sleep to the next schedule change (or the horizon).
                changes = self.rate.change_times(self.sim.now, horizon)
                if not changes:
                    return
                yield self.sim.timeout(changes[0] - self.sim.now)
                continue
            gap = float(self.rng.exponential(1.0 / rate))
            if self.sim.now + gap > horizon:
                return
            yield self.sim.timeout(gap)
            self._issue()

    def _issue(self) -> None:
        assert self._router is not None
        now = self.sim.now
        req = Request(
            rid=f"{self.name}.{self._ids.next('req')}",
            client=self.name,
            response_size=float(self.size_fn(now, self.rng)),
            request_size=self.request_size,
            issued_at=now,
        )
        self.issued += 1
        for listener in self._request_listeners:
            listener(req)
        self.sim.schedule(self.request_latency, self._router, req)

    # -- response delivery (called by servers) -----------------------------------
    def deliver(self, req: Request) -> None:
        """Record a completed response; invoked by the sending server."""
        now = self.sim.now
        req.completed_at = now
        self.received += 1
        latency = req.latency
        assert latency is not None
        self.completions.append((now, latency))
        self.latency_window.add(now, latency)
        for listener in self._response_listeners:
            listener(req)

    # -- statistics ----------------------------------------------------------------
    def average_latency(self, now: Optional[float] = None) -> Optional[float]:
        """Windowed mean latency of recently completed requests."""
        return self.latency_window.mean(self.sim.now if now is None else now)

    @property
    def in_flight(self) -> int:
        return self.issued - self.received

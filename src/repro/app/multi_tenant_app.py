"""A simulated multi-tenant grid service (runtime layer).

N tenants, each owning a private :class:`~repro.app.master_worker_app.
MasterWorkerApplication` pool (FIFO queue draining into interchangeable
workers) fed by its own seeded task stream.  Tenants share nothing at
runtime — which is precisely why their repairs have disjoint footprints:
growing tenant A's pool cannot affect tenant B's queue, so the
architecture manager may run both repairs concurrently.

The adaptation-facing signal is the per-tenant **latency estimate**:
``backlog x mean service time / pool width`` — the queueing delay a
newly submitted task can expect, the per-tenant fairness figure the
``fairLatency`` invariant bounds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.app.master_worker_app import MasterWorkerApplication
from repro.errors import EnvironmentError_
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace

__all__ = ["MultiTenantApplication"]


class MultiTenantApplication:
    """N isolated tenant pools behind one logical gateway."""

    def __init__(
        self,
        sim: Simulator,
        tenants: Sequence[str],
        workers: int,
        service_mean: float,
        rng_factory,
        trace: Optional[Trace] = None,
    ):
        if not tenants:
            raise EnvironmentError_("a multi-tenant service needs tenants")
        self.sim = sim
        self.trace = trace if trace is not None else Trace()
        self.tenants: List[str] = list(tenants)
        self.service_mean = float(service_mean)
        self.pools: Dict[str, MasterWorkerApplication] = {
            tenant: MasterWorkerApplication(
                sim,
                workers=workers,
                service_mean=service_mean,
                straggler_prob=0.0,
                straggler_factor=1.0,
                task_rng=rng_factory(f"multi_tenant.{tenant}.tasks"),
                rescue_rng=rng_factory(f"multi_tenant.{tenant}.rescue"),
                trace=self.trace,
            )
            for tenant in tenants
        }

    def pool(self, tenant: str) -> MasterWorkerApplication:
        try:
            return self.pools[tenant]
        except KeyError:
            raise EnvironmentError_(f"no tenant {tenant!r}") from None

    # -- task flow ---------------------------------------------------------
    def submit(self, tenant: str) -> None:
        """Inject one task into a tenant's queue (demand drawn now)."""
        self.pool(tenant).submit()

    # -- queries -----------------------------------------------------------
    def latency(self, tenant: str) -> float:
        """Expected queueing delay for a new task at this tenant."""
        pool = self.pool(tenant)
        return pool.queue_length * self.service_mean / pool.pool_size

    def utilization(self, tenant: str) -> float:
        return self.pool(tenant).utilization()

    def pool_size(self, tenant: str) -> int:
        return self.pool(tenant).pool_size

    def queue_length(self, tenant: str) -> int:
        return self.pool(tenant).queue_length

    @property
    def issued(self) -> int:
        return sum(pool.issued for pool in self.pools.values())

    @property
    def completed(self) -> int:
        return sum(pool.completed for pool in self.pools.values())

    def violating(self, max_latency: float) -> List[str]:
        """Tenants whose ground-truth latency exceeds the bound now."""
        return [
            tenant for tenant in self.tenants
            if self.latency(tenant) > max_latency
        ]

    # -- runtime change operators ------------------------------------------
    def set_pool_size(self, tenant: str, size: int) -> int:
        """Resize one tenant's pool; returns the old size."""
        return self.pool(tenant).set_pool_size(size)

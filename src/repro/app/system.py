"""The assembled grid application: placement, wiring, statistics."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.app.client import Client
from repro.app.request_queue import RequestQueueService
from repro.app.server import Server
from repro.app.server_group import ServerGroupRuntime
from repro.errors import EnvironmentError_
from repro.net.flows import FlowNetwork
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace

__all__ = ["GridApplication"]


class GridApplication:
    """Registry and wiring for clients, servers, groups, and the RQ machine.

    ``placement`` below refers to mapping application entities onto testbed
    machines (topology host names); the Figure 6 builder in
    :mod:`repro.experiment.testbed` performs the paper's placement,
    including the shared machines (C1+C2, C5+C6, S5+RQ).
    """

    def __init__(
        self,
        sim: Simulator,
        network: FlowNetwork,
        rq_machine: str,
        trace: Optional[Trace] = None,
    ):
        self.sim = sim
        self.network = network
        self.trace = trace if trace is not None else Trace()
        self.rq = RequestQueueService(sim, machine=rq_machine)
        self.clients: Dict[str, Client] = {}
        self.servers: Dict[str, Server] = {}
        self.groups: Dict[str, ServerGroupRuntime] = {}

    # -- construction -------------------------------------------------------------
    def add_client(self, client: Client) -> Client:
        if client.name in self.clients:
            raise EnvironmentError_(f"duplicate client {client.name!r}")
        if not self.network.topology.has_node(client.machine):
            raise EnvironmentError_(
                f"client {client.name} placed on unknown machine {client.machine!r}"
            )
        self.clients[client.name] = client
        client.connect(self.rq.accept)
        return client

    def add_server(self, server: Server) -> Server:
        if server.name in self.servers:
            raise EnvironmentError_(f"duplicate server {server.name!r}")
        if not self.network.topology.has_node(server.machine):
            raise EnvironmentError_(
                f"server {server.name} placed on unknown machine {server.machine!r}"
            )
        self.servers[server.name] = server
        server.bind_client_resolver(self.client)
        return server

    def create_group(self, name: str) -> ServerGroupRuntime:
        """Create a server group and its request queue (Table 1 createReqQueue)."""
        if name in self.groups:
            raise EnvironmentError_(f"duplicate server group {name!r}")
        queue = self.rq.create_queue(name)
        group = ServerGroupRuntime(name, queue)
        self.groups[name] = group
        return group

    # -- lookups --------------------------------------------------------------------
    def client(self, name: str) -> Client:
        try:
            return self.clients[name]
        except KeyError:
            raise EnvironmentError_(f"unknown client {name!r}") from None

    def server(self, name: str) -> Server:
        try:
            return self.servers[name]
        except KeyError:
            raise EnvironmentError_(f"unknown server {name!r}") from None

    def group(self, name: str) -> ServerGroupRuntime:
        try:
            return self.groups[name]
        except KeyError:
            raise EnvironmentError_(f"unknown server group {name!r}") from None

    def group_of_server(self, server_name: str) -> Optional[ServerGroupRuntime]:
        for g in self.groups.values():
            if server_name in g:
                return g
        return None

    def group_of_client(self, client_name: str) -> ServerGroupRuntime:
        return self.group(self.rq.assignment_of(client_name))

    def machine_of(self, entity: str) -> str:
        """Machine hosting a client, server, or the RQ service."""
        if entity in self.clients:
            return self.clients[entity].machine
        if entity in self.servers:
            return self.servers[entity].machine
        if entity == "RQ":
            return self.rq.machine
        raise EnvironmentError_(f"unknown entity {entity!r}")

    @property
    def spare_servers(self) -> List[Server]:
        """Registered servers not currently active in any group."""
        return [
            s for name, s in sorted(self.servers.items())
            if not s.active and self.group_of_server(name) is None
        ]

    # -- execution --------------------------------------------------------------------
    def start_clients(self, horizon: float) -> None:
        for name in sorted(self.clients):
            self.clients[name].start(horizon)

    # -- aggregate statistics --------------------------------------------------------------
    @property
    def total_issued(self) -> int:
        return sum(c.issued for c in self.clients.values())

    @property
    def total_completed(self) -> int:
        return sum(c.received for c in self.clients.values())

    def group_load(self, group: str) -> int:
        return self.group(group).load

    def bandwidth_between(self, client_name: str, group_name: str) -> float:
        """Predicted bandwidth client <-> group: min over active servers.

        Requests are dispatched FIFO to *any* group member, so the worst
        member path bounds the service a client can rely on; the repair
        preconditions and ``findGoodSGroup`` use this definition.
        """
        client = self.client(client_name)
        members = self.group(group_name).active_members
        if not members:
            return 0.0
        return min(
            self.network.predicted_bandwidth(s.machine, client.machine)
            for s in members
        )

"""The environment manager: the paper's Table 1 operators and queries.

Each operator mutates the running (simulated) application and emits a trace
record under ``runtime.op.*``.  Operators are instantaneous state changes;
the *time cost* of invoking them from the model layer (RMI latency, gauge
redeployment, Remos queries) is charged by :mod:`repro.translation`, which
is where the paper's ~30 s repair duration lives.

Table 1 mapping:

=====================  ==========================================
Paper                   Here
=====================  ==========================================
createReqQueue()        :meth:`EnvironmentManager.create_req_queue`
findServer(cli, bw)     :meth:`EnvironmentManager.find_server`
moveClient(newQ)        :meth:`EnvironmentManager.move_client`
connectServer(srv, q)   :meth:`EnvironmentManager.connect_server`
activateServer()        :meth:`EnvironmentManager.activate_server`
deactivateServer()      :meth:`EnvironmentManager.deactivate_server`
remos_get_flow(a, b)    :meth:`EnvironmentManager.remos_get_flow`
=====================  ==========================================
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.app.server_group import ServerGroupRuntime
from repro.app.system import GridApplication
from repro.errors import EnvironmentError_
from repro.net.remos import RemosService
from repro.sim.kernel import Event

__all__ = ["EnvironmentManager"]


class EnvironmentManager:
    """Runtime-layer change operators (Table 1)."""

    def __init__(self, app: GridApplication, remos: RemosService):
        self.app = app
        self.remos = remos
        self.sim = app.sim
        self.trace = app.trace
        self.op_count = 0

    def _emit(self, op: str, **data) -> None:
        self.op_count += 1
        self.trace.emit(self.sim.now, f"runtime.op.{op}", **data)

    # ------------------------------------------------------------------
    # Table 1 operators
    # ------------------------------------------------------------------
    def create_req_queue(self, group_name: str) -> ServerGroupRuntime:
        """Add a logical request queue (and its group) to the RQ machine."""
        group = self.app.create_group(group_name)
        self._emit("createReqQueue", group=group_name)
        return group

    def find_server(
        self, client_name: str, bw_thresh: float
    ) -> Optional[str]:
        """Find a spare server with at least ``bw_thresh`` bandwidth to the client.

        Spares are registered servers not in any group.  Candidates are
        ranked by predicted bandwidth (descending, name-tiebreak) using the
        flow engine's current state — the runtime-layer query the paper
        implements with Remos data.  Returns None when nothing qualifies.
        """
        client = self.app.client(client_name)
        candidates: List[Tuple[float, str]] = []
        for server in self.app.spare_servers:
            bw = self.app.network.predicted_bandwidth(server.machine, client.machine)
            if bw >= bw_thresh:
                candidates.append((-bw, server.name))
        candidates.sort()
        found = candidates[0][1] if candidates else None
        self._emit("findServer", client=client_name, bw_thresh=bw_thresh, found=found)
        return found

    def move_client(self, client_name: str, group_name: str) -> str:
        """Re-route a client's future requests to ``group_name``'s queue.

        Moving tears down the client's old response connections: responses
        still queued or in flight at the old group's servers are dropped
        (they travel the path the move is escaping from; re-routing the
        client abandons that stream).  Dropped counts are tracked on the
        servers and reported by the experiment harness.
        """
        old = self.app.rq.move_client(client_name, group_name)
        dropped = 0
        for server in self.app.group(old).members:
            dropped += server.purge_destination(client_name)
        self._emit(
            "moveClient", client=client_name, frm=old, to=group_name,
            dropped=dropped,
        )
        return old

    def connect_server(self, server_name: str, group_name: str) -> None:
        """Configure a server to pull from ``group_name``'s request queue."""
        server = self.app.server(server_name)
        group = self.app.group(group_name)
        current = self.app.group_of_server(server_name)
        if current is not None and current.name != group_name:
            raise EnvironmentError_(
                f"server {server_name} is in group {current.name}; remove it first"
            )
        server.connect(group_name, group.queue)
        if current is None:
            group.add(server)
        self._emit("connectServer", server=server_name, group=group_name)

    def activate_server(self, server_name: str) -> None:
        """Signal a connected server to begin pulling requests."""
        server = self.app.server(server_name)
        if self.app.group_of_server(server_name) is None:
            raise EnvironmentError_(
                f"server {server_name} must be connected to a group before activation"
            )
        server.activate()
        self._emit("activateServer", server=server_name, group=server.group)

    def deactivate_server(self, server_name: str, detach: bool = True) -> None:
        """Signal a server to stop pulling requests.

        With ``detach`` (default) the server also leaves its group and
        becomes a spare again — the paper's ``remove()`` model operator
        "deletes the server from its containing server group and changes
        the replication count".
        """
        server = self.app.server(server_name)
        group = self.app.group_of_server(server_name)
        server.deactivate()
        if detach and group is not None:
            group.remove(server)
        self._emit(
            "deactivateServer",
            server=server_name,
            group=group.name if group else None,
            detached=detach,
        )

    def remos_get_flow(self, entity_a: str, entity_b: str) -> Event:
        """Predicted bandwidth between the machines of two entities.

        Asynchronous like the real Remos API: returns an event that yields
        bits/second after the (cold or warm) query delay.
        """
        ma = self.app.machine_of(entity_a)
        mb = self.app.machine_of(entity_b)
        self._emit("remos_get_flow", a=entity_a, b=entity_b, warm=self.remos.is_warm(ma, mb))
        return self.remos.get_flow(ma, mb)

    # ------------------------------------------------------------------
    # Composite helper used by the translator's addServer mapping
    # ------------------------------------------------------------------
    def recruit_server(self, client_name: str, group_name: str, bw_thresh: float) -> str:
        """findServer + connectServer + activateServer in one step.

        Raises :class:`EnvironmentError_` when no spare qualifies, which the
        repair tactic surfaces as a failed ``addServer`` operator.
        """
        found = self.find_server(client_name, bw_thresh)
        if found is None:
            raise EnvironmentError_(
                f"no spare server with {bw_thresh:.0f} bps to {client_name}"
            )
        self.connect_server(found, group_name)
        self.activate_server(found)
        return found

"""Server groups: replicated servers draining one FIFO request queue."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.app.server import Server
from repro.errors import EnvironmentError_
from repro.sim.primitives import Store

__all__ = ["ServerGroupRuntime"]


class ServerGroupRuntime:
    """Membership and load of one replicated server group.

    The group does not own server processes — it tracks which servers are
    currently members (connected to its queue) so the monitoring layer can
    compute group load and the environment manager can maintain the
    replication count.
    """

    def __init__(self, name: str, queue: Store):
        self.name = name
        self.queue = queue
        self._members: Dict[str, Server] = {}

    # -- membership ------------------------------------------------------------
    def add(self, server: Server) -> None:
        if server.name in self._members:
            raise EnvironmentError_(f"{server.name} already in group {self.name}")
        self._members[server.name] = server

    def remove(self, server: Server) -> None:
        if server.name not in self._members:
            raise EnvironmentError_(f"{server.name} is not in group {self.name}")
        del self._members[server.name]

    def __contains__(self, server_name: str) -> bool:
        return server_name in self._members

    @property
    def members(self) -> List[Server]:
        return [self._members[k] for k in sorted(self._members)]

    @property
    def active_members(self) -> List[Server]:
        return [s for s in self.members if s.active]

    @property
    def replication(self) -> int:
        """Active replica count (the model's ``replication`` property)."""
        return len(self.active_members)

    # -- load -------------------------------------------------------------------
    @property
    def load(self) -> int:
        """Waiting requests — the paper's measured server load (Figure 9/13)."""
        return len(self.queue)

    def service_rate(self, response_size: float = 20e3) -> float:
        """Aggregate requests/second at the given response size."""
        return sum(
            1.0 / s.service_time(response_size) for s in self.active_members
        )

    def utilization(self, now: Optional[float] = None) -> float:
        """Mean compute utilization across active members (0 when empty)."""
        members = self.active_members
        if not members:
            return 0.0
        return sum(s.utilization(now) for s in members) / len(members)

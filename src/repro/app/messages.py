"""Request records flowing through the grid application.

A :class:`Request` is created by a client, routed by the request-queue
machine into a per-server-group FIFO, pulled by a server, and answered with
a response transfer back to the client.  Timestamps of each stage stay on
the record so gauges and the experiment harness can derive latency, queue
delay, service delay, and transfer delay without extra bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["Request"]


@dataclass
class Request:
    """One client request and its lifecycle timestamps (seconds).

    ``request_size``/``response_size`` are bytes.  The paper's workload:
    requests average 0.5 KB, responses average 20 KB, and "the size of the
    reply is indicated by the client request".
    """

    rid: str
    client: str
    response_size: float
    request_size: float = 512.0
    issued_at: float = 0.0
    group: Optional[str] = None
    enqueued_at: Optional[float] = None
    dequeued_at: Optional[float] = None
    served_by: Optional[str] = None
    service_done_at: Optional[float] = None
    completed_at: Optional[float] = None

    # -- derived metrics ----------------------------------------------------
    @property
    def latency(self) -> Optional[float]:
        """End-to-end latency (issue -> response fully received)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.issued_at

    @property
    def queue_delay(self) -> Optional[float]:
        if self.enqueued_at is None or self.dequeued_at is None:
            return None
        return self.dequeued_at - self.enqueued_at

    @property
    def service_delay(self) -> Optional[float]:
        if self.dequeued_at is None or self.service_done_at is None:
            return None
        return self.service_done_at - self.dequeued_at

    @property
    def transfer_delay(self) -> Optional[float]:
        """Send-stage delay: service completion -> client receipt."""
        if self.service_done_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.service_done_at

    @property
    def completed(self) -> bool:
        return self.completed_at is not None

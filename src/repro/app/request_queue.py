"""The request-queue machine (RQ).

"The clients send requests to an entity that splits the requests into
queues, corresponding to the client's server group" (§5).  This service
owns one logical FIFO per server group plus the client -> group assignment
used by ``moveClient``.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.app.messages import Request
from repro.errors import EnvironmentError_
from repro.sim.kernel import Simulator
from repro.sim.primitives import Store

__all__ = ["RequestQueueService"]


class RequestQueueService:
    """Per-group request FIFOs and client routing."""

    def __init__(self, sim: Simulator, machine: str = "RQ"):
        self.sim = sim
        self.machine = machine
        self._queues: Dict[str, Store] = {}
        self._assignment: Dict[str, str] = {}
        self.routed = 0
        self._route_listeners: List[Callable[[Request], None]] = []

    # -- queue management (Table 1: createReqQueue) -----------------------------
    def create_queue(self, group: str) -> Store:
        """Add a logical request queue for ``group`` (Table 1 createReqQueue)."""
        if group in self._queues:
            raise EnvironmentError_(f"request queue for group {group!r} already exists")
        store = Store(self.sim, name=f"queue.{group}")
        self._queues[group] = store
        return store

    def queue(self, group: str) -> Store:
        try:
            return self._queues[group]
        except KeyError:
            raise EnvironmentError_(f"no request queue for group {group!r}") from None

    @property
    def groups(self) -> List[str]:
        return sorted(self._queues)

    def queue_length(self, group: str) -> int:
        """The paper's "server load": waiting requests for ``group``."""
        return len(self.queue(group))

    # -- client assignment (Table 1: moveClient) ---------------------------------
    def assign(self, client: str, group: str) -> None:
        """Initial placement of ``client`` onto ``group``'s queue."""
        self.queue(group)  # validate
        self._assignment[client] = group

    def assignment_of(self, client: str) -> str:
        try:
            return self._assignment[client]
        except KeyError:
            raise EnvironmentError_(f"client {client!r} has no queue assignment") from None

    def move_client(self, client: str, group: str) -> str:
        """Re-route future requests of ``client`` to ``group``.

        Requests already queued at the old group stay there and are served
        by the old group (they were split on arrival, like the paper's
        implementation).  Returns the previous group.
        """
        old = self.assignment_of(client)
        self.queue(group)  # validate target
        self._assignment[client] = group
        return old

    @property
    def assignments(self) -> Dict[str, str]:
        return dict(self._assignment)

    def clients_of(self, group: str) -> List[str]:
        return sorted(c for c, g in self._assignment.items() if g == group)

    # -- routing -----------------------------------------------------------------
    def on_route(self, listener: Callable[[Request], None]) -> None:
        """Probe hook: called whenever a request is enqueued."""
        self._route_listeners.append(listener)

    def accept(self, req: Request) -> None:
        """Enqueue an arriving request onto its client's group queue."""
        group = self.assignment_of(req.client)
        req.group = group
        req.enqueued_at = self.sim.now
        self.routed += 1
        self._queues[group].put(req)
        for listener in self._route_listeners:
            listener(req)

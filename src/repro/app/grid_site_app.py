"""A simulated federated grid of failing sites (runtime layer).

N sites, each a block of worker slots (pools x slots-per-pool), fed by
one submission gateway.  The gateway's router is deliberately
**health-blind**: it keeps a static, capacity-weighted round-robin cycle
over every non-drained site and never looks at liveness.  That is the
unmanaged baseline the paper's adaptation argument needs — when a site
goes dark, the router keeps assigning it work, so an unadapted grid
black-holes a capacity-weighted share of all new arrivals into the dead
site's queue and strands whatever was running there.

Site failure semantics:

* ``fail(site)`` — running tasks are *stranded*: pushed back onto the
  site's local queue (they will re-draw service on restart), and the
  queue freezes until recovery.  New arrivals keep landing in the
  frozen queue (the router is health-blind).
* ``recover(site)`` — the site thaws and pumps its backlog through its
  slots again.

The two adaptation effectors:

* ``drain_site`` — mark the site drained, remove it from the routing
  cycle, and push its entire backlog through the router onto the
  surviving sites;
* ``resubmit_pilots`` — clear the drained flag and rejoin the cycle.

Determinism: one shared service-time RNG, drawn in event order; the
router cycle is rebuilt deterministically from sorted site order.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import EnvironmentError_
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace

__all__ = ["GridSiteApplication"]


class _Site:
    """One site's runtime state: slots, frozen/drained flags, backlog."""

    __slots__ = (
        "name", "slots", "up", "drained", "queue", "running", "epoch",
        "stranded", "completed",
    )

    def __init__(self, name: str, slots: int):
        self.name = name
        self.slots = int(slots)
        self.up = True
        self.drained = False
        self.queue: Deque[int] = deque()
        self.running = 0
        #: bumped on every crash; in-flight completions from an older
        #: epoch are stale and ignored (their tasks were stranded)
        self.epoch = 0
        self.stranded = 0
        self.completed = 0


class GridSiteApplication:
    """Sites x pools x slots behind one health-blind submission router."""

    def __init__(
        self,
        sim: Simulator,
        sites: Sequence[Tuple[str, int, int]],
        service_mean: float,
        rng,
        trace: Optional[Trace] = None,
    ):
        if not sites:
            raise EnvironmentError_("a grid needs at least one site")
        self.sim = sim
        self.trace = trace if trace is not None else Trace()
        self.service_mean = float(service_mean)
        self.rng = rng
        self.sites: Dict[str, _Site] = {}
        for name, pools, slots in sites:
            if name in self.sites:
                raise EnvironmentError_(f"duplicate site {name!r}")
            self.sites[name] = _Site(name, int(pools) * int(slots))
        self.issued = 0
        self.completed = 0
        self._task_seq = 0
        self._cycle: List[str] = []
        self._cursor = 0
        self._rebuild_cycle()

    def site(self, name: str) -> _Site:
        try:
            return self.sites[name]
        except KeyError:
            raise EnvironmentError_(f"no site {name!r}") from None

    # -- routing -----------------------------------------------------------
    def _rebuild_cycle(self) -> None:
        """Static capacity-weighted cycle over non-drained sites.

        Each site appears once per worker slot, interleaved by repeated
        sorted passes — deterministic, and health-blind by design.
        """
        cycle: List[str] = []
        names = sorted(name for name, site in self.sites.items() if not site.drained)
        if names:
            width = max(self.sites[name].slots for name in names)
            for round_ in range(width):
                cycle.extend(name for name in names if self.sites[name].slots > round_)
        self._cycle = cycle
        self._cursor = 0

    def _route(self) -> _Site:
        """Pick the next target site; fall back to shortest queue."""
        if self._cycle:
            site = self.sites[self._cycle[self._cursor % len(self._cycle)]]
            self._cursor += 1
            return site
        # Every site drained (degenerate): shortest total backlog wins,
        # name-ordered ties — still deterministic.
        return min(
            self.sites.values(),
            key=lambda s: (len(s.queue) + s.running, s.name),
        )

    # -- task flow ---------------------------------------------------------
    def submit(self) -> None:
        """Inject one pilot job through the (health-blind) router."""
        self.issued += 1
        self._task_seq += 1
        self._enqueue(self._route())

    def _enqueue(self, site: _Site) -> None:
        site.queue.append(self._task_seq)
        self._pump(site)

    def _pump(self, site: _Site) -> None:
        if not site.up:
            return
        while site.queue and site.running < site.slots:
            site.queue.popleft()
            site.running += 1
            service = self.rng.exponential(self.service_mean)
            self.sim.schedule(service, self._complete, site, site.epoch)

    def _complete(self, site: _Site, epoch: int) -> None:
        if epoch != site.epoch:
            return  # the crash already stranded this task
        site.running -= 1
        site.completed += 1
        self.completed += 1
        self._pump(site)

    # -- failure surface (fault-plane callbacks) ---------------------------
    def fail(self, name: str) -> None:
        """Crash a site: strand running tasks back onto its queue."""
        site = self.site(name)
        if not site.up:
            return
        site.up = False
        stranded = site.running
        site.epoch += 1
        site.running = 0
        site.stranded += stranded
        for _ in range(stranded):
            site.queue.appendleft(self._task_seq)
        self.trace.emit(
            self.sim.now, "site.down", site=name, stranded=stranded,
            queued=len(site.queue),
        )

    def recover(self, name: str) -> None:
        """Thaw a site; its backlog pumps through the slots again."""
        site = self.site(name)
        if site.up:
            return
        site.up = True
        self.trace.emit(
            self.sim.now, "site.up", site=name, queued=len(site.queue),
        )
        self._pump(site)

    # -- adaptation effectors ----------------------------------------------
    def drain_site(self, name: str) -> int:
        """Route a site's backlog away and drop it from rotation."""
        site = self.site(name)
        site.drained = True
        self._rebuild_cycle()
        moved = len(site.queue)
        backlog = site.queue
        site.queue = deque()
        while backlog:
            task = backlog.popleft()
            target = self._route()
            if target is site:  # every site drained: keep it local
                site.queue.append(task)
                continue
            target.queue.append(task)
            self._pump(target)
        self.trace.emit(self.sim.now, "site.drained", site=name, moved=moved)
        return moved

    def resubmit_pilots(self, name: str) -> None:
        """Rejoin the routing cycle (pilots resubmitted)."""
        site = self.site(name)
        site.drained = False
        self._rebuild_cycle()
        self.trace.emit(self.sim.now, "site.rejoined", site=name)
        self._pump(site)

    # -- queries -----------------------------------------------------------
    def healthy(self, name: str) -> float:
        """Heartbeat signal for the ``healthy`` probes: 1.0 or 0.0."""
        return 1.0 if self.site(name).up else 0.0

    def drained_flag(self, name: str) -> float:
        return 1.0 if self.site(name).drained else 0.0

    def queue_length(self, name: str) -> int:
        site = self.site(name)
        return len(site.queue) + site.running

    def sites_down(self) -> int:
        return sum(1 for site in self.sites.values() if not site.up)

    def sites_drained(self) -> int:
        return sum(1 for site in self.sites.values() if site.drained)

    def backlog(self) -> int:
        return sum(self.queue_length(name) for name in self.sites)

    @property
    def stranded(self) -> int:
        return sum(site.stranded for site in self.sites.values())

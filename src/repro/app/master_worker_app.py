"""A simulated master/worker task farm (runtime layer).

The counterpart of :class:`~repro.app.pipeline_app.PipelineApplication`
for the :mod:`repro.styles.master_worker` style: a master holds a FIFO
task queue and dispatches to a pool of interchangeable workers.  Each
task's service demand is drawn *at submission* (so control and adapted
runs process the identical seeded task set); a small fraction of tasks
are **stragglers** whose demand is multiplied by a heavy-tail factor —
the grid reality (a task landed on an overloaded or failing node) that
motivates re-dispatch repairs.

Three runtime change operators (this application's Table 1):

* :meth:`set_pool_size` — grow or shrink the worker pool.  Growing pumps
  the queue immediately; shrinking below the busy count retires workers
  lazily as their current tasks finish.
* :meth:`redispatch_oldest` — cancel the longest-running assignment and
  restart that task immediately with a *fresh* service draw (it moved to
  a healthy node), leaving the original draw abandoned.  Cancellation is
  epoch-based: every assignment carries an epoch, and a completion event
  whose epoch is stale is ignored.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional

from repro.errors import EnvironmentError_
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace

__all__ = ["FarmTask", "MasterWorkerApplication"]


@dataclass(frozen=True)
class FarmTask:
    """One unit of work: identity, submission time, drawn demand."""

    tid: int
    submitted: float
    service: float
    straggler: bool


@dataclass
class _Assignment:
    task: FarmTask
    started: float
    epoch: int


class MasterWorkerApplication:
    """A task farm: FIFO master queue draining into a worker pool."""

    def __init__(
        self,
        sim: Simulator,
        workers: int,
        service_mean: float,
        straggler_prob: float,
        straggler_factor: float,
        task_rng,
        rescue_rng,
        trace: Optional[Trace] = None,
    ):
        if workers < 1:
            raise EnvironmentError_("a worker pool needs at least one worker")
        if service_mean <= 0:
            raise EnvironmentError_("service_mean must be positive")
        if not 0.0 <= straggler_prob < 1.0:
            raise EnvironmentError_("straggler_prob must be in [0, 1)")
        if straggler_factor < 1.0:
            raise EnvironmentError_("straggler_factor must be >= 1")
        self.sim = sim
        self.trace = trace if trace is not None else Trace()
        self.size = int(workers)
        self.service_mean = float(service_mean)
        self.straggler_prob = float(straggler_prob)
        self.straggler_factor = float(straggler_factor)
        self._task_rng = task_rng
        self._rescue_rng = rescue_rng
        self.queue: Deque[FarmTask] = deque()
        self.running: Dict[int, _Assignment] = {}
        self._epoch = 0
        self._next_tid = 0
        self.issued = 0
        self.completed = 0
        self.rescues = 0
        self.straggler_tasks = 0

    # -- task flow ---------------------------------------------------------
    def submit(self) -> FarmTask:
        """Inject one task; its demand is drawn now (run-independent)."""
        self._next_tid += 1
        service = float(self._task_rng.exponential(self.service_mean))
        straggler = bool(self._task_rng.random() < self.straggler_prob)
        if straggler:
            service *= self.straggler_factor
            self.straggler_tasks += 1
        task = FarmTask(
            tid=self._next_tid,
            submitted=self.sim.now,
            service=service,
            straggler=straggler,
        )
        self.queue.append(task)
        self.issued += 1
        self._dispatch()
        return task

    def _dispatch(self) -> None:
        while len(self.running) < self.size and self.queue:
            task = self.queue.popleft()
            self._epoch += 1
            self.running[task.tid] = _Assignment(task, self.sim.now, self._epoch)
            self.sim.schedule(task.service, self._finish, task.tid, self._epoch)

    def _finish(self, tid: int, epoch: int) -> None:
        assignment = self.running.get(tid)
        if assignment is None or assignment.epoch != epoch:
            return  # cancelled by a re-dispatch; ignore the stale event
        del self.running[tid]
        self.completed += 1
        self._dispatch()

    # -- queries -----------------------------------------------------------
    @property
    def busy(self) -> int:
        return len(self.running)

    @property
    def queue_length(self) -> int:
        """Tasks waiting at the master (not counting running ones)."""
        return len(self.queue)

    @property
    def pool_size(self) -> int:
        return self.size

    @property
    def in_flight(self) -> int:
        return self.issued - self.completed

    def utilization(self) -> float:
        """Busy workers over pool size, in [0, 1]."""
        return min(1.0, self.busy / self.size)

    def oldest_age(self, now: Optional[float] = None) -> float:
        """Age of the longest-running assignment (0 when none run)."""
        if not self.running:
            return 0.0
        now = self.sim.now if now is None else now
        return now - min(a.started for a in self.running.values())

    # -- runtime change operators (this application's Table 1) -------------
    def set_pool_size(self, size: int) -> int:
        """Resize the worker pool; returns the old size."""
        if size < 1:
            raise EnvironmentError_("a worker pool needs at least one worker")
        old, self.size = self.size, int(size)
        self.trace.emit(
            self.sim.now, "runtime.op.setPoolSize", frm=old, to=self.size,
        )
        self._dispatch()  # growing frees capacity for queued tasks now
        return old

    def redispatch_oldest(self) -> Optional[int]:
        """Restart the longest-running task with a fresh service draw.

        Returns the re-dispatched task id, or None when nothing runs.
        """
        if not self.running:
            return None
        tid = min(
            self.running, key=lambda t: (self.running[t].started, t)
        )
        old = self.running[tid]
        fresh = float(self._rescue_rng.exponential(self.service_mean))
        self._epoch += 1
        self.running[tid] = _Assignment(old.task, self.sim.now, self._epoch)
        self.sim.schedule(fresh, self._finish, tid, self._epoch)
        self.rescues += 1
        self.trace.emit(
            self.sim.now, "runtime.op.redispatch",
            tid=tid, stuck_for=self.sim.now - old.started,
            straggler=old.task.straggler,
        )
        return tid

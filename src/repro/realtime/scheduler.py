"""A wall-clock pacemaker behind the simulator's scheduling interface.

:class:`RealtimeScheduler` is a :class:`~repro.sim.kernel.Simulator`
whose run loop *paces* the event heap against a
:class:`~repro.realtime.clock.Clock` instead of draining it: an event
scheduled for logical time ``t`` executes once ``clock.elapsed() >= t``.
Everything built on the simulator interface — processes, the event bus,
gauges, the repair engine, the whole
:class:`~repro.runtime.core.AdaptationRuntime` — runs unmodified on
either plane; the logical timeline (``now``, timeout delays, trace
timestamps) is identical in kind, it just advances in step with the
clock.

Two additions over the simulated kernel:

* :meth:`call_soon_threadsafe` — the *only* sanctioned way to hand work
  to the scheduler from another thread (an HTTP handler, an asyncio
  loop).  Injected callbacks are stamped at the clock's current elapsed
  time and run in injection order; the sleeping loop wakes immediately.
* :meth:`stop` — ends :meth:`run` from any thread.  A realtime run with
  no horizon is a service: an empty heap means *idle*, not *done*.

Determinism: with a :class:`~repro.realtime.clock.FakeClock` the waits
advance logical time instantly, so a scripted schedule executes the
exact event sequence a wall clock would — repeatably.  The realtime
test suite pins this (same seed + same injected telemetry => identical
repair history).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, List, Optional, Tuple

from repro.realtime.clock import Clock, WallClock
from repro.sim.kernel import Simulator

__all__ = ["RealtimeScheduler"]

#: longest idle wait between wakeup checks when no event is pending
_IDLE_WAIT = 0.5


class RealtimeScheduler(Simulator):
    """Drop-in simulator that executes events in step with a clock."""

    def __init__(self, clock: Optional[Clock] = None):
        super().__init__()
        self.clock: Clock = clock if clock is not None else WallClock()
        self._wakeup = threading.Event()
        self._stop_requested = False
        self._injected: List[Tuple[Callable[..., Any], Tuple[Any, ...]]] = []
        self._inject_lock = threading.Lock()
        #: events executed / worst observed lateness behind the clock
        self.executed = 0
        self.max_lag = 0.0

    # -- cross-thread seam -------------------------------------------------
    def call_soon_threadsafe(self, fn: Callable[..., Any], *args: Any) -> None:
        """Run ``fn(*args)`` on the scheduler thread, stamped at "now".

        Safe from any thread; injection order is execution order.  This
        is how external telemetry enters the plane: an ingest endpoint
        or asyncio callback pushes ``probe.ingest`` work here instead of
        touching the (single-threaded) bus directly.
        """
        with self._inject_lock:
            self._injected.append((fn, args))
        self._wakeup.set()

    def stop(self) -> None:
        """Ask a running :meth:`run` loop to return (thread-safe)."""
        self._stop_requested = True
        self._wakeup.set()

    @property
    def stopped(self) -> bool:
        return self._stop_requested

    # -- paced execution ---------------------------------------------------
    def _drain_injected(self) -> int:
        with self._inject_lock:
            pending, self._injected = self._injected, []
        arrival = max(self._now, self.clock.elapsed())
        for fn, args in pending:
            self.schedule_at(arrival, fn, *args)
        return len(pending)

    def run(self, until: Optional[float] = None) -> None:
        """Pace the heap against the clock until ``until`` or :meth:`stop`.

        With ``until`` given, the loop returns once logical time reaches
        it (events scheduled at exactly ``until`` still execute) and
        leaves ``now == until``, mirroring the simulated kernel.  With
        ``until=None`` the loop runs as a service until :meth:`stop`.
        """
        if self._running:
            raise RuntimeError("RealtimeScheduler.run is not reentrant")
        self._running = True
        try:
            while not self._stop_requested:
                self._wakeup.clear()
                if self._drain_injected():
                    continue  # re-evaluate the head with injections queued
                due = self.peek()
                if until is not None and (due is None or due > until):
                    if self.clock.elapsed() >= until:
                        break
                    self.clock.wait(
                        min(_IDLE_WAIT, until - self.clock.elapsed()),
                        self._wakeup,
                    )
                    continue
                if due is None:
                    self.clock.wait(_IDLE_WAIT, self._wakeup)
                    continue
                wait = due - self.clock.elapsed()
                if wait > 0:
                    self.clock.wait(wait, self._wakeup)
                    continue  # re-check: an injection may precede the head
                self.step()
                self.executed += 1
                lag = self.clock.elapsed() - self._now
                if lag > self.max_lag:
                    self.max_lag = lag
            if until is not None and not self._stop_requested:
                self._now = float(until)
        finally:
            self._running = False

"""The wall-clock execution plane.

Everything else in the repro runs inside the discrete-event simulator;
this package runs the *same* control plane against real time and a real
application:

* :mod:`repro.realtime.clock` — the sanctioned wall-clock seam
  (:class:`WallClock`) and its deterministic test double
  (:class:`FakeClock`), mirroring how ``util/rng.py`` is the one place
  ambient randomness may enter;
* :mod:`repro.realtime.scheduler` — :class:`RealtimeScheduler`, a
  drop-in :class:`~repro.sim.kernel.Simulator` whose run loop paces
  event execution against a clock instead of draining the heap;
* :mod:`repro.realtime.driver` — :class:`RealtimeDriver`, which owns a
  scheduler thread, an :class:`~repro.runtime.core.AdaptationRuntime`
  over a live :class:`~repro.runtime.app.ManagedApplication`, and the
  thread-safe telemetry ingestion seam
  (:meth:`~repro.realtime.driver.RealtimeDriver.ingest`);
* :mod:`repro.realtime.demo` — the live-adaptation demo: an asyncio
  HTTP worker pool adapted under a wrk-style load generator.

See docs/serving.md for the wall-clock vs simulated-time semantics.
"""

from repro.realtime.clock import Clock, FakeClock, WallClock
from repro.realtime.driver import RealtimeDriver
from repro.realtime.scheduler import RealtimeScheduler

__all__ = [
    "Clock",
    "FakeClock",
    "WallClock",
    "RealtimeDriver",
    "RealtimeScheduler",
]

"""The live-adaptation demo: a real asyncio app adapted in wall time.

This is the end-to-end proof of the wall-clock plane, and the online
restaging of the paper's Figure 7 experiment: a running application is
pushed past its provisioned capacity, the architecture model notices
through gauges, and a committed repair resizes the real system while
clients keep measuring it from the outside.

The cast:

* the application — :class:`~repro.app.async_pool_app.AsyncWorkerPoolApp`,
  an asyncio HTTP server whose concurrency is gated by a resizable
  worker pool (starts at ``pool_size``, budget ``max_workers``);
* the load — a closed-loop ``wrk``-style generator driving three
  phases: a calm ``warmup``, a ``burst`` of many concurrent
  connections that swamps the initial pool, and a small ``cooldown``;
* the control plane — the same style machinery the simulated task farm
  uses (a ``WorkerPoolT`` with ``grow``/``shrink`` operators), mounted
  on a :class:`~repro.realtime.driver.RealtimeDriver`: periodic probes
  sample the live queue depth and occupancy, a bus-ingested probe
  receives *client-side* latency pushed in from the load generator, and
  the translator actuates committed resizes back into the asyncio loop.

``run_live_demo(adapted=True)`` runs one such episode;
:func:`run_comparison` runs adapted and control (same app, same load,
no control plane) back to back and gates on the burst-phase p95:
adaptation must grow the pool during the burst, shrink it after, and
beat the control run's p95 by the required factor.  ``repro live-demo``
is the CLI front door; CI runs it with ``--check``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.acme.family import Family
from repro.acme.system import ArchSystem
from repro.app.async_pool_app import AsyncWorkerPoolApp, LoadGenerator, Phase
from repro.bus.bus import FixedDelay
from repro.errors import TranslationError
from repro.monitoring.gauges import EwmaGauge, WindowedMeanGauge
from repro.monitoring.probes import CallbackProbe, IngestProbe
from repro.realtime.clock import Clock, WallClock
from repro.realtime.driver import RealtimeDriver
from repro.runtime import (
    AdaptationRuntime,
    AdaptationSpec,
    GaugeBinding,
    IntentExecutor,
    ManagedApplication,
    ProbeBinding,
)
from repro.sim.process import Process
from repro.styles.master_worker import master_worker_operators

__all__ = [
    "LIVE_POOL_DSL",
    "build_live_pool_family",
    "build_live_pool_model",
    "build_live_pool_spec",
    "LivePoolTranslator",
    "LivePoolManagedApplication",
    "run_live_demo",
    "run_comparison",
    "main",
]


def build_live_pool_family() -> Family:
    """``LivePoolFam``: one ``WorkerPoolT`` component, live-pool properties.

    The component type keeps the task-farm style's name so its
    ``grow``/``shrink`` operators apply unchanged; ``latency`` carries
    the bus-ingested client-side measurement onto the model.
    """
    fam = Family("LivePoolFam")
    (
        fam.component_type("WorkerPoolT")
        .declare_property("backlog", "float", 0.0)
        .declare_property("size", "int", 1)
        .declare_property("minSize", "int", 1)
        .declare_property("utilization", "float", 1.0)
        .declare_property("latency", "float", 0.0)
    )
    fam.add_invariant("queueBound", "backlog <= maxBacklog")
    fam.add_invariant("idlePool", "size <= minSize or utilization >= minUtilization")
    return fam


def build_live_pool_model(
    name: str, pool_size: int, min_size: int, family: Optional[Family] = None
) -> ArchSystem:
    fam = family if family is not None else build_live_pool_family()
    system = ArchSystem(name, family=fam.name)
    pool = system.new_component("pool", ["WorkerPoolT"])
    fam.initialize(pool)
    pool.set_property("size", int(pool_size))
    pool.set_property("minSize", int(min_size))
    return system


LIVE_POOL_DSL = """
invariant q : backlog <= maxBacklog ! -> growPool(q);
invariant u : size <= minSize or utilization >= minUtilization
    ! -> shrinkPool(u);

strategy growPool(busyPool : WorkerPoolT) = {
    if (addWorkers(busyPool)) {
        commit repair;
    } else {
        abort NoWorkersLeft;
    }
}

// Grow two workers per committed repair: wall-clock bursts move faster
// than the simulated farm's, so single steps would spend the burst
// still provisioning.
tactic addWorkers(pool : WorkerPoolT) : boolean = {
    if (pool.backlog <= maxBacklog) {
        return false;
    }
    pool.grow(2);
    return true;
}

strategy shrinkPool(idlePool : WorkerPoolT) = {
    if (removeWorker(idlePool)) {
        commit repair;
    } else {
        abort ModelError;
    }
}

tactic removeWorker(pool : WorkerPoolT) : boolean = {
    if (pool.size <= pool.minSize) {
        return false;
    }
    if (pool.utilization >= minUtilization) {
        return false;
    }
    if (pool.backlog >= lowWater) {
        return false;
    }
    pool.shrink(1);
    return true;
}
"""


class LivePoolTranslator(IntentExecutor):
    """Actuates committed resize intents into the running asyncio app.

    The translator runs on the scheduler thread; the application's
    :meth:`~repro.app.async_pool_app.AsyncWorkerPoolApp.request_resize`
    hops onto the asyncio loop itself, so the cross-thread boundary is
    crossed exactly once, inside the app's sanctioned seam.
    """

    INTENT_OPS = frozenset({"addWorkers", "removeWorkers"})

    def __init__(self, app: AsyncWorkerPoolApp, sim, actuation_delay: float = 0.05):
        self.app = app
        self.sim = sim
        self.actuation_delay = float(actuation_delay)
        self.executed: List[Any] = []

    def execute(self, intents, on_done=None) -> Process:
        return Process(
            self.sim,
            self._run(list(intents), on_done),
            name="live-pool-translator",
        )

    def _run(self, intents, on_done):
        for intent in intents:
            if intent.op not in ("addWorkers", "removeWorkers"):
                raise TranslationError(
                    f"no live-pool mapping for intent {intent.op!r}"
                )
            if self.actuation_delay > 0:
                yield self.sim.timeout(self.actuation_delay)
            self.app.request_resize(int(intent.args["size"]))
            self.executed.append(intent)
        if on_done is not None:
            on_done()


class LivePoolManagedApplication(ManagedApplication):
    """The asyncio worker pool wrapped for the adaptation runtime."""

    name = "live-worker-pool"

    def __init__(self, app: AsyncWorkerPoolApp, min_workers: int):
        self.app = app
        self.min_workers = int(min_workers)

    def architecture(self) -> ArchSystem:
        return build_live_pool_model(
            "LivePoolModel",
            pool_size=self.app.pool_size,
            min_size=self.min_workers,
        )

    def intent_executor(self, runtime: AdaptationRuntime) -> LivePoolTranslator:
        return LivePoolTranslator(self.app, runtime.sim)


def build_live_pool_spec(
    app: AsyncWorkerPoolApp,
    max_workers: int = 12,
    max_backlog: float = 10.0,
    min_utilization: float = 0.75,
    low_water: float = 2.0,
    probe_period: float = 0.1,
    gauge_period: float = 0.25,
    backlog_horizon: float = 1.0,
    settle_time: float = 0.4,
) -> AdaptationSpec:
    """The live demo's control plane, tuned for wall-clock timescales.

    Same shape as the simulated task farm's spec, with three deltas:
    sub-second monitoring/settle periods (a wall-clock burst lasts
    seconds, not simulated minutes), a near-zero gauge deployment
    delay, and a bus-ingested ``latency`` probe fed by the load
    generator from outside the process.
    """
    instruments: List[Any] = [
        ProbeBinding(
            lambda rt: CallbackProbe(
                rt.sim, rt.probe_bus, "backlog", "pool",
                lambda: float(app.queue_depth), period=probe_period,
            ),
            periodic=True,
        ),
        GaugeBinding(
            lambda rt: WindowedMeanGauge(
                rt.sim, rt.probe_bus, rt.gauge_bus, "backlog", "pool",
                period=gauge_period, horizon=backlog_horizon,
            ),
            entities=["pool"],
        ),
        ProbeBinding(
            lambda rt: CallbackProbe(
                rt.sim, rt.probe_bus, "utilization", "pool",
                app.utilization, period=probe_period,
            ),
            periodic=True,
        ),
        GaugeBinding(
            lambda rt: EwmaGauge(
                rt.sim, rt.probe_bus, rt.gauge_bus, "utilization", "pool",
                period=gauge_period, tau=4 * gauge_period,
            ),
            entities=["pool"],
        ),
        # the push path: client-side latency enters over the bus via
        # RealtimeDriver.ingest -> IngestProbe, nothing polls for it
        ProbeBinding(
            lambda rt: IngestProbe(rt.sim, rt.probe_bus, "latency", "pool"),
            periodic=False,
        ),
        GaugeBinding(
            lambda rt: WindowedMeanGauge(
                rt.sim, rt.probe_bus, rt.gauge_bus, "latency", "pool",
                period=gauge_period, horizon=backlog_horizon,
            ),
            entities=["pool"],
        ),
    ]

    def _operators(rt: AdaptationRuntime) -> Dict[str, Any]:
        ops = master_worker_operators(max_workers=max_workers)
        return {"grow": ops["grow"], "shrink": ops["shrink"]}

    return AdaptationSpec(
        style="LivePoolFam",
        dsl_source=LIVE_POOL_DSL,
        invariant_scopes={"q": "WorkerPoolT", "u": "WorkerPoolT"},
        bindings={
            "maxBacklog": max_backlog,
            "minUtilization": min_utilization,
            "lowWater": low_water,
        },
        operators=_operators,
        instruments=instruments,
        gauge_property_map={
            "backlog": "backlog",
            "utilization": "utilization",
            "latency": "latency",
        },
        delivery=FixedDelay(0.01),
        gauge_create_delay=0.05,
        settle_time=settle_time,
        failed_repair_cost=0.1,
        violation_policy="first",
    )


def default_phases(
    warmup: float = 2.0, burst: float = 10.0, cooldown: float = 3.5
) -> List[Phase]:
    return [
        ("warmup", 8, float(warmup)),
        ("burst", 64, float(burst)),
        ("cooldown", 4, float(cooldown)),
    ]


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = int(round(q * (len(ordered) - 1)))
    return ordered[index]


def run_live_demo(
    adapted: bool = True,
    service_time: float = 0.05,
    pool_size: int = 2,
    max_workers: int = 12,
    phases: Optional[List[Phase]] = None,
    clock: Optional[Clock] = None,
) -> Dict[str, Any]:
    """One live episode: start the app, drive the load, tear down.

    With ``adapted=True`` a :class:`RealtimeDriver` runs the control
    plane against the live app and every client-measured latency is
    pushed into its ingest probe; with ``adapted=False`` the identical
    app takes the identical load with no plane attached.
    """
    phases = phases if phases is not None else default_phases()
    clock = clock if clock is not None else WallClock()
    app = AsyncWorkerPoolApp(service_time=service_time, pool_size=pool_size)
    app.start()
    driver: Optional[RealtimeDriver] = None
    try:
        on_latency = None
        if adapted:
            driver = RealtimeDriver(
                LivePoolManagedApplication(app, min_workers=pool_size),
                build_live_pool_spec(app, max_workers=max_workers),
                clock=clock,
            )
            driver.start()

            def on_latency(phase: str, seconds: float) -> None:
                driver.ingest("latency", "pool", seconds)

        load = LoadGenerator(app.host, app.port, clock, on_latency=on_latency)
        load.run(phases)
    finally:
        if driver is not None:
            driver.stop()
        app.stop()

    result: Dict[str, Any] = {
        "adapted": bool(adapted),
        "requests": len(load.samples),
        "connection_errors": load.errors,
        "pool_initial": pool_size,
        "pool_peak": app.peak_pool_size,
        "pool_final": app.pool_size,
        "phases": {
            name: {
                "requests": len(load.latencies(name)),
                "p50": _percentile(load.latencies(name), 0.50),
                "p95": _percentile(load.latencies(name), 0.95),
            }
            for name, _, _ in phases
        },
        "p95_overall": _percentile(load.latencies(), 0.95),
    }
    if driver is not None:
        history = driver.history
        committed = history.committed
        ops = [intent.op for record in committed for intent in record.intents]
        result["repairs"] = {
            "committed": len(history.committed),
            "aborted": len(history.aborted),
            "grew": ops.count("addWorkers"),
            "shrank": ops.count("removeWorkers"),
        }
        result["ingested"] = driver.ingested
        result["scheduler"] = {
            "executed": driver.scheduler.executed,
            "max_lag": round(driver.scheduler.max_lag, 4),
        }
    return result


def run_comparison(
    factor: float = 0.75,
    service_time: float = 0.05,
    pool_size: int = 2,
    max_workers: int = 12,
    phases: Optional[List[Phase]] = None,
) -> Dict[str, Any]:
    """Control vs adapted under identical load; gate on burst p95.

    The gates CI enforces: the adapted run grew the pool during the
    burst, shrank it again afterwards, and its burst-phase p95 beat the
    control run's by at least ``factor``.
    """
    control = run_live_demo(
        adapted=False,
        service_time=service_time,
        pool_size=pool_size,
        max_workers=max_workers,
        phases=phases,
    )
    adapted = run_live_demo(
        adapted=True,
        service_time=service_time,
        pool_size=pool_size,
        max_workers=max_workers,
        phases=phases,
    )
    control_p95 = control["phases"]["burst"]["p95"]
    adapted_p95 = adapted["phases"]["burst"]["p95"]
    checks = {
        "p95_improved": adapted_p95 < factor * control_p95,
        "grew_during_burst": adapted["repairs"]["grew"] > 0,
        "shrank_after_burst": adapted["repairs"]["shrank"] > 0,
        "pool_scaled_back": adapted["pool_final"] < adapted["pool_peak"],
    }
    return {
        "factor": factor,
        "control": control,
        "adapted": adapted,
        "burst_p95_control": control_p95,
        "burst_p95_adapted": adapted_p95,
        "speedup": (control_p95 / adapted_p95) if adapted_p95 > 0 else 0.0,
        "checks": checks,
        "ok": all(checks.values()),
    }


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """``python -m repro.realtime.demo`` / ``repro live-demo``."""
    import argparse
    import sys

    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro live-demo",
        description="adapt a live asyncio worker pool under burst load",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless the adapted run beats control on burst p95",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the full comparison as JSON"
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=0.75,
        help="required adapted/control burst-p95 ratio (default 0.75)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="shorter phases (for local smoke runs; gates get noisier)",
    )
    args = parser.parse_args(argv)
    phases = default_phases(1.0, 5.0, 2.0) if args.fast else None
    report = run_comparison(factor=args.factor, phases=phases)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True), file=out)
    else:
        control, adapted = report["control"], report["adapted"]
        print(
            "control: burst p95 "
            f"{report['burst_p95_control'] * 1000:.0f} ms "
            f"(pool stays {control['pool_initial']})",
            file=out,
        )
        print(
            "adapted: burst p95 "
            f"{report['burst_p95_adapted'] * 1000:.0f} ms "
            f"(pool {adapted['pool_initial']} -> {adapted['pool_peak']} "
            f"-> {adapted['pool_final']}, "
            f"{adapted['repairs']['committed']} repairs committed)",
            file=out,
        )
        print(f"speedup: {report['speedup']:.2f}x", file=out)
        for name, passed in report["checks"].items():
            print(f"  [{'ok' if passed else 'FAIL'}] {name}", file=out)
    if args.check and not report["ok"]:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

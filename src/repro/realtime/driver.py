"""The realtime driver: one control plane over one live application.

:class:`RealtimeDriver` is the online analogue of a scenario's
experiment object: it builds an
:class:`~repro.runtime.core.AdaptationRuntime` from the same
:class:`~repro.runtime.spec.AdaptationSpec` +
:class:`~repro.runtime.app.ManagedApplication` contract the simulated
scenarios use, but mounts it on a
:class:`~repro.realtime.scheduler.RealtimeScheduler` so probes sample,
gauges report, invariants evaluate, and committed repairs actuate in
wall-clock time against a *running* application.

Three seams connect the plane to the outside world:

* **telemetry in** — :meth:`ingest` pushes an externally captured
  sample to a named :class:`~repro.monitoring.probes.IngestProbe`; it
  is safe from any thread (the sample hops onto the scheduler via
  ``call_soon_threadsafe`` and is published on the probe bus there);
* **effectors out** — the spec's intent executor calls back into the
  live application; executors for threaded/asyncio apps must make that
  callback thread-safe (e.g. ``loop.call_soon_threadsafe``);
* **inspection** — :meth:`stats` / :attr:`history` serve the same
  :class:`~repro.runtime.stats.RuntimeStats` / repair-history surfaces
  ``repro serve`` exposes over HTTP.

With the default :class:`~repro.realtime.clock.WallClock`,
:meth:`start`/:meth:`stop` run the loop on a daemon thread.  With a
:class:`~repro.realtime.clock.FakeClock`, :meth:`run_until` runs the
loop in the calling thread as fast as the host allows — the
deterministic mode the realtime test suite pins.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro.monitoring.probes import IngestProbe
from repro.realtime.clock import Clock
from repro.realtime.scheduler import RealtimeScheduler
from repro.runtime.app import ManagedApplication
from repro.runtime.core import AdaptationRuntime
from repro.runtime.spec import AdaptationSpec
from repro.runtime.stats import RuntimeStats
from repro.sim.trace import Trace

__all__ = ["RealtimeDriver"]


class RealtimeDriver:
    """Owns a scheduler + adaptation runtime over a live application."""

    def __init__(
        self,
        app: ManagedApplication,
        spec: AdaptationSpec,
        clock: Optional[Clock] = None,
        trace: Optional[Trace] = None,
    ):
        self.scheduler = RealtimeScheduler(clock)
        self.clock = self.scheduler.clock
        self.app = app
        self.runtime = AdaptationRuntime(self.scheduler, app, spec, trace=trace)
        self._ingest_probes: Dict[Tuple[str, str], IngestProbe] = {
            (probe.kind, probe.target): probe
            for probe in self.runtime.probes
            if isinstance(probe, IngestProbe)
        }
        self._thread: Optional[threading.Thread] = None
        self._started = False
        self._runtime_started = False
        self.ingested = 0

    # -- telemetry ingestion (any thread) ----------------------------------
    def ingest_targets(self) -> Tuple[Tuple[str, str], ...]:
        """The (kind, target) pairs external samples may address."""
        return tuple(sorted(self._ingest_probes))

    def ingest(
        self, kind: str, target: str, value: float, time: Optional[float] = None
    ) -> None:
        """Push one externally captured sample into the probe bus.

        Thread-safe: the sample crosses onto the scheduler thread and is
        published there.  Unknown (kind, target) pairs raise ``KeyError``
        — the wiring audit's WIR402 is the static half of that check.
        """
        probe = self._ingest_probes.get((kind, target))
        if probe is None:
            raise KeyError(
                f"no IngestProbe for ({kind!r}, {target!r}); "
                f"declared: {self.ingest_targets()}"
            )
        self.ingested += 1
        self.scheduler.call_soon_threadsafe(probe.ingest, float(value), time)

    # -- lifecycle ---------------------------------------------------------
    def _start_runtime_once(self) -> None:
        if not self._runtime_started:
            self._runtime_started = True
            self.runtime.start()

    def start(self) -> None:
        """Start probes and run the paced loop on a daemon thread."""
        if self._started:
            raise RuntimeError("RealtimeDriver already started")
        self._started = True
        self._start_runtime_once()
        self._thread = threading.Thread(
            target=self.scheduler.run, name="repro-realtime", daemon=True
        )
        self._thread.start()

    def run_until(self, horizon: float) -> None:
        """Run the loop in the calling thread up to logical ``horizon``.

        The deterministic entry point: with a
        :class:`~repro.realtime.clock.FakeClock` this executes the exact
        schedule a wall clock would, instantly and repeatably.
        """
        if self._started:
            raise RuntimeError("driver already running on a thread")
        self._start_runtime_once()
        self.scheduler.run(until=horizon)

    def stop(self, join_timeout: float = 5.0) -> None:
        """Stop the loop, join the thread, and flush buffered telemetry."""
        self.scheduler.stop()
        if self._thread is not None:
            self._thread.join(timeout=join_timeout)
            self._thread = None
        self.runtime.stop()
        for probe in self._ingest_probes.values():
            probe.flush()

    # -- inspection --------------------------------------------------------
    @property
    def history(self):
        return self.runtime.history

    def stats(self) -> RuntimeStats:
        return self.runtime.stats()

"""The sanctioned wall-clock seam for the realtime plane.

The determinism lint (DET301) forbids every module that runs inside or
drives simulated time from reading ambient time — ``util/rng.py`` plays
the same role for randomness.  This module is the one place the realtime
plane touches the OS clock: :class:`WallClock` wraps ``time.monotonic``
plus an interruptible wait, and :class:`FakeClock` is the deterministic
double the realtime test suite runs on (advancing "elapsed" time
instantly instead of sleeping), so the same scheduler code paths are
exercised bit-for-bit reproducibly.

Everything else in ``repro.realtime`` / ``repro.serve`` takes time from
a :class:`Clock` instance handed in at construction; nothing outside
this file may call ``time.*`` (the lint sweep enforces it).
"""

from __future__ import annotations

import threading
import time
from typing import Optional, Protocol, runtime_checkable

__all__ = ["Clock", "WallClock", "FakeClock"]


@runtime_checkable
class Clock(Protocol):
    """What the realtime scheduler needs from a time source."""

    def elapsed(self) -> float:
        """Seconds since the clock's origin (monotonic, starts at 0)."""
        ...  # pragma: no cover - protocol

    def wait(self, timeout: float, interrupt: Optional[threading.Event]) -> bool:
        """Block up to ``timeout`` seconds; True if ``interrupt`` fired."""
        ...  # pragma: no cover - protocol


class WallClock:
    """Real time: ``time.monotonic`` anchored at construction.

    ``wait`` blocks on the caller's interrupt event so a sleeping run
    loop wakes immediately when another thread injects work or asks the
    scheduler to stop — the latency of external telemetry ingestion is
    one event wait, not a polling interval.
    """

    def __init__(self) -> None:
        self._origin = time.monotonic()

    def elapsed(self) -> float:
        return time.monotonic() - self._origin

    def wait(self, timeout: float, interrupt: Optional[threading.Event]) -> bool:
        if timeout <= 0:
            return False
        if interrupt is None:
            time.sleep(timeout)
            return False
        return interrupt.wait(timeout)


class FakeClock:
    """Deterministic clock: ``wait`` advances elapsed time instantly.

    Runs the realtime scheduler as fast as the host allows while keeping
    the *logical* timeline exact: a loop that would sleep 0.25 s on a
    :class:`WallClock` advances ``elapsed()`` by exactly 0.25 instead.
    ``advance`` supports tests that move time by hand between steps.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._elapsed = float(start)
        self.waits = 0

    def elapsed(self) -> float:
        return self._elapsed

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance a clock backwards ({seconds})")
        self._elapsed += float(seconds)

    def wait(self, timeout: float, interrupt: Optional[threading.Event]) -> bool:
        if timeout > 0:
            self._elapsed += float(timeout)
            self.waits += 1
        return False

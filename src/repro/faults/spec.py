"""Frozen, hashable fault-injection configuration.

A :class:`FaultSpec` says *what can break* during a run — components
crashing and recovering, effectors raising / silently no-opping /
hanging, probes going dark, the bus dropping deliveries — without wiring
any of it.  The :class:`~repro.faults.plane.FaultPlane` consumes the
spec and injects the failures as ordinary simulation processes, so a
fault schedule is exactly as deterministic as the rest of the run: the
spec's ``seed`` derives one independent named RNG stream per injection
site (``faults.outage.<component>``, ``faults.probe.<name>``, ...),
which means a control run and an adapted run built from the same seed
see the *same* outage schedule regardless of which other injections are
enabled.

Everything here is a frozen dataclass built from scalars and tuples:
specs are hashable (safe inside cached run configurations) and
immutable once a plane is built from them.  ``FaultSpec()`` with no
fault sections is inert; ``AdaptationSpec.faults`` defaults to ``None``
— the no-fault event schedule is pinned bit-for-bit by the serial
fingerprints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "OutageSpec",
    "EffectorFaultSpec",
    "ProbeDropoutSpec",
    "BusFaultSpec",
    "FaultSpec",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(f"invalid fault spec: {message}")


@dataclass(frozen=True)
class OutageSpec:
    """Crash/recovery cycling for a set of named components.

    Each target runs its own up/down process: up-times are exponential
    with mean ``mtbf``, outages exponential with mean ``outage_mean``,
    both drawn from the target's private ``faults.outage.<name>`` stream.
    ``start``/``end`` bound the injection window (no new crashes outside
    it; an outage in progress still recovers).  ``max_outages`` caps the
    number of crash/recover cycles per target (0 = unlimited).
    """

    targets: Tuple[str, ...]
    mtbf: float
    outage_mean: float
    start: float = 0.0
    end: float = math.inf
    max_outages: int = 0

    def validate(self) -> None:
        _require(len(self.targets) > 0, "outage targets must not be empty")
        _require(self.mtbf > 0, "outage mtbf must be positive")
        _require(self.outage_mean > 0, "outage_mean must be positive")
        _require(
            0.0 <= self.start < self.end,
            "outage window must satisfy 0 <= start < end",
        )
        _require(self.max_outages >= 0, "max_outages must be >= 0")


@dataclass(frozen=True)
class EffectorFaultSpec:
    """Runtime-intent execution faults (the translator's failure modes).

    Per matching intent one uniform draw selects among: **raise** (the
    effector fails loudly; nothing is applied and the repair engine's
    completion callback receives an error), **no-op** (the intent is
    silently discarded — the model/runtime divergence the paper's gauges
    must eventually re-detect), **hang** (the intent never completes, so
    only a repair ``timeout`` recovers the transaction), or normal
    execution.  ``ops`` restricts injection to the named intent ops
    (empty = all).
    """

    fail_prob: float = 0.0
    noop_prob: float = 0.0
    hang_prob: float = 0.0
    ops: Tuple[str, ...] = ()

    def validate(self) -> None:
        for name in ("fail_prob", "noop_prob", "hang_prob"):
            value = getattr(self, name)
            _require(0.0 <= value <= 1.0, f"{name} must be in [0, 1]")
        _require(
            self.fail_prob + self.noop_prob + self.hang_prob <= 1.0,
            "fail_prob + noop_prob + hang_prob must be <= 1",
        )

    def applies_to(self, op: str) -> bool:
        return not self.ops or op in self.ops


@dataclass(frozen=True)
class ProbeDropoutSpec:
    """Probes going dark: disabled for a sampled window, then back.

    Each bound probe whose name contains one of ``targets`` (empty = all
    bound probes) runs a private dropout process: exponential time
    between dropouts with mean ``mtbd``, dark windows exponential with
    mean ``dropout_mean``.  A dark probe publishes nothing — batched
    observations captured before the window still flush afterwards.
    """

    mtbd: float = 300.0
    dropout_mean: float = 30.0
    targets: Tuple[str, ...] = ()
    start: float = 0.0
    end: float = math.inf

    def validate(self) -> None:
        _require(self.mtbd > 0, "probe mtbd must be positive")
        _require(self.dropout_mean > 0, "probe dropout_mean must be positive")
        _require(
            0.0 <= self.start < self.end,
            "dropout window must satisfy 0 <= start < end",
        )


@dataclass(frozen=True)
class BusFaultSpec:
    """Per-(subscriber, message) delivery drops on bound buses.

    Every matching delivery is dropped independently with probability
    ``drop_prob`` (one draw per candidate delivery, in the bus's
    deterministic subscriber order).  Dropped deliveries count into the
    bus's ``dead_letters`` total and its per-subscriber breakdown.
    ``buses`` restricts injection to the named buses and ``subjects`` to
    messages whose subject starts with one of the given prefixes
    (empty = all).
    """

    drop_prob: float = 0.0
    buses: Tuple[str, ...] = ()
    subjects: Tuple[str, ...] = ()

    def validate(self) -> None:
        _require(0.0 <= self.drop_prob <= 1.0, "drop_prob must be in [0, 1]")

    def applies_to_bus(self, name: str) -> bool:
        return not self.buses or name in self.buses

    def applies_to_subject(self, subject: str) -> bool:
        return not self.subjects or any(
            subject.startswith(prefix) for prefix in self.subjects
        )


@dataclass(frozen=True)
class FaultSpec:
    """The full fault configuration for one run.

    ``seed`` roots every injection stream (see module doc).  ``enabled``
    is an explicit kill switch: a spec can stay attached to a config
    while its faults are off, which must reproduce the no-fault schedule
    exactly (the plane is simply not built).
    """

    seed: int = 0
    enabled: bool = True
    outages: Tuple[OutageSpec, ...] = ()
    effector: Optional[EffectorFaultSpec] = None
    probe_dropouts: Optional[ProbeDropoutSpec] = None
    bus: Optional[BusFaultSpec] = None

    def validate(self) -> None:
        seen = set()
        for outage in self.outages:
            outage.validate()
            for target in outage.targets:
                _require(
                    target not in seen,
                    f"component {target!r} appears in more than one OutageSpec",
                )
                seen.add(target)
        if self.effector is not None:
            self.effector.validate()
        if self.probe_dropouts is not None:
            self.probe_dropouts.validate()
        if self.bus is not None:
            self.bus.validate()

    def active(self) -> bool:
        """True when the spec can actually inject something."""
        return self.enabled and bool(
            self.outages
            or self.effector is not None
            or self.probe_dropouts is not None
            or self.bus is not None
        )

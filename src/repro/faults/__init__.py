"""Deterministic fault injection: frozen specs + the runtime plane."""

from repro.faults.plane import FaultPlane, FaultyTranslator
from repro.faults.spec import (
    BusFaultSpec,
    EffectorFaultSpec,
    FaultSpec,
    OutageSpec,
    ProbeDropoutSpec,
)

__all__ = [
    "BusFaultSpec",
    "EffectorFaultSpec",
    "FaultPlane",
    "FaultSpec",
    "FaultyTranslator",
    "OutageSpec",
    "ProbeDropoutSpec",
]

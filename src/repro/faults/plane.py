"""The fault plane: deterministic failure injection as sim processes.

The source paper's premise is adaptation under *grid-resource failure*,
yet a simulator that cannot break anything on purpose only ever
exercises the happy path.  The :class:`FaultPlane` closes that gap: it
turns a frozen :class:`~repro.faults.spec.FaultSpec` into ordinary
simulation processes and hooks —

* **component outages** — each target cycles up/down on its own seeded
  process, calling the ``on_fail``/``on_recover`` callbacks the
  application registered via :meth:`bind_component`;
* **effector faults** — :meth:`wrap_translator` interposes a
  :class:`FaultyTranslator` that makes committed runtime intents raise,
  silently no-op, or hang (never complete);
* **probe dropout** — bound probes go dark for sampled windows (their
  ``enabled`` flag is the paper's "probe deleted / redeployed" surface);
* **bus delivery faults** — bound buses drop matching deliveries
  per-(subscriber, message) and count them as dead letters.

Determinism: every injection site draws from its own named stream
derived from ``spec.seed`` (``faults.outage.S2``, ``faults.probe.p``,
``faults.bus.probe-bus``, ``faults.effector``), so enabling one fault
class never perturbs another's schedule, and a control run (outages
only) flaps components identically to the adapted run that also injects
effector/probe/bus faults.

The plane is deliberately runtime-agnostic: scenarios without an
adaptation runtime (control runs) build one directly and bind their
application objects; :class:`~repro.runtime.core.AdaptationRuntime`
builds one from ``spec.faults`` and wires the managed application
through :meth:`~repro.runtime.app.ManagedApplication.bind_faults`.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.faults.spec import EffectorFaultSpec, FaultSpec, OutageSpec
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.trace import Trace
from repro.util.rng import derive_rng

__all__ = ["FaultPlane", "FaultyTranslator"]


class FaultyTranslator:
    """Wraps an intent executor with seeded effector failure modes.

    Per matching intent one uniform draw picks raise / no-op / hang /
    pass-through (see :class:`~repro.faults.spec.EffectorFaultSpec`).
    A **raise** fails the whole execution before side effects: nothing
    is applied and ``on_done`` is invoked with an error string — the
    resilient repair engine aborts the still-open transaction and
    retries.  A **no-op** silently discards one intent; the rest
    execute and complete normally (the model now lies about the
    runtime, until monitoring re-detects the violation).  A **hang**
    executes the intents before the hung one but never signals
    completion — only a repair timeout gets the engine's slot back.
    """

    def __init__(
        self,
        inner: Any,
        spec: EffectorFaultSpec,
        sim: Simulator,
        rng,
        trace: Trace,
        counters: Dict[str, int],
    ):
        self.inner = inner
        self.spec = spec
        self.sim = sim
        self._rng = rng
        self.trace = trace
        self.counters = counters

    def execute(self, intents, on_done=None):
        spec = self.spec
        survivors: List[Any] = []
        error: Optional[str] = None
        hang = False
        for intent in intents:
            if not spec.applies_to(intent.op):
                survivors.append(intent)
                continue
            draw = float(self._rng.random())
            if draw < spec.fail_prob:
                error = f"EffectorRaise:{intent.op}"
                self.counters["effector_raised"] += 1
                self.trace.emit(self.sim.now, "fault.effector_raise", op=intent.op)
                break
            if draw < spec.fail_prob + spec.noop_prob:
                self.counters["effector_noops"] += 1
                self.trace.emit(self.sim.now, "fault.effector_noop", op=intent.op)
                continue
            if draw < spec.fail_prob + spec.noop_prob + spec.hang_prob:
                hang = True
                self.counters["effector_hangs"] += 1
                self.trace.emit(self.sim.now, "fault.effector_hang", op=intent.op)
                break
            survivors.append(intent)
        if error is not None:
            if on_done is not None:
                self.sim.schedule(0.0, on_done, error)
            return None
        if hang:
            # Intents before the hung one still execute; completion is
            # never signalled (the repair timeout is the only way out).
            if survivors:
                return self.inner.execute(survivors, on_done=None)
            return None
        if survivors:
            return self.inner.execute(survivors, on_done=on_done)
        if on_done is not None:
            self.sim.schedule(0.0, on_done)
        return None


class FaultPlane:
    """Injects a :class:`FaultSpec` into one run.  See module doc.

    Usage: construct, bind injection surfaces (components, probes,
    buses, translator), then :meth:`start` once — construction itself
    schedules nothing, so building a plane never perturbs event order.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: FaultSpec,
        trace: Optional[Trace] = None,
    ):
        spec.validate()
        self.sim = sim
        self.spec = spec
        self.trace = trace if trace is not None else Trace()
        self._components: Dict[str, Tuple[Callable[[], None], Callable[[], None]]] = {}
        self._probes: List[Any] = []
        self._buses: List[Any] = []
        self._started = False
        self.down: set = set()
        self.counters: Dict[str, int] = {
            "crashes": 0,
            "recoveries": 0,
            "probe_dropouts": 0,
            "probe_recoveries": 0,
            "effector_raised": 0,
            "effector_noops": 0,
            "effector_hangs": 0,
        }

    def _rng(self, key: str):
        return derive_rng(self.spec.seed, key)

    # -- binding injection surfaces ----------------------------------------
    def bind_component(
        self,
        name: str,
        on_fail: Callable[[], None],
        on_recover: Callable[[], None],
    ) -> None:
        """Register a crashable component's fail/recover callbacks."""
        self._components[name] = (on_fail, on_recover)

    def bind_probe(self, probe: Any) -> None:
        """Register a probe (``.name``/``.enabled``) for dropout windows."""
        self._probes.append(probe)

    def bind_bus(self, bus: Any) -> None:
        """Install the delivery-drop filter on an event bus."""
        spec = self.spec.bus
        if spec is None or not self.spec.enabled:
            return
        if not spec.applies_to_bus(bus.name):
            return
        rng = self._rng(f"faults.bus.{bus.name}")

        def drop(sub, msg) -> bool:
            if not spec.applies_to_subject(msg.subject):
                return False
            return float(rng.random()) < spec.drop_prob

        bus.fault_injector = drop
        self._buses.append(bus)

    def wrap_translator(self, translator: Any) -> Any:
        """Interpose effector faults; identity when none are configured."""
        spec = self.spec.effector
        if spec is None or not self.spec.enabled or translator is None:
            return translator
        return FaultyTranslator(
            translator,
            spec,
            self.sim,
            self._rng("faults.effector"),
            self.trace,
            self.counters,
        )

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Launch outage and probe-dropout processes (idempotent)."""
        if self._started or not self.spec.enabled:
            return
        self._started = True
        for outage in self.spec.outages:
            for target in outage.targets:
                if target not in self._components:
                    raise ReproError(
                        f"fault plane: outage target {target!r} was never "
                        f"bound via bind_component"
                    )
                Process(
                    self.sim,
                    self._outage_proc(outage, target),
                    name=f"fault-outage-{target}",
                )
        dropout = self.spec.probe_dropouts
        if dropout is not None:
            for probe in self._probes:
                name = getattr(probe, "name", "")
                if dropout.targets and not any(
                    token in name for token in dropout.targets
                ):
                    continue
                Process(
                    self.sim,
                    self._dropout_proc(dropout, probe),
                    name=f"fault-dropout-{name}",
                )

    def _outage_proc(self, outage: OutageSpec, name: str):
        on_fail, on_recover = self._components[name]
        rng = self._rng(f"faults.outage.{name}")
        if outage.start > 0:
            yield self.sim.timeout(outage.start)
        cycles = 0
        while True:
            yield self.sim.timeout(float(rng.exponential(outage.mtbf)))
            if math.isfinite(outage.end) and self.sim.now >= outage.end:
                return
            self.counters["crashes"] += 1
            self.down.add(name)
            self.trace.emit(self.sim.now, "fault.crash", component=name)
            on_fail()
            yield self.sim.timeout(float(rng.exponential(outage.outage_mean)))
            self.counters["recoveries"] += 1
            self.down.discard(name)
            self.trace.emit(self.sim.now, "fault.recover", component=name)
            on_recover()
            cycles += 1
            if outage.max_outages and cycles >= outage.max_outages:
                return

    def _dropout_proc(self, dropout, probe):
        rng = self._rng(f"faults.probe.{getattr(probe, 'name', '')}")
        if dropout.start > 0:
            yield self.sim.timeout(dropout.start)
        while True:
            yield self.sim.timeout(float(rng.exponential(dropout.mtbd)))
            if math.isfinite(dropout.end) and self.sim.now >= dropout.end:
                return
            self.counters["probe_dropouts"] += 1
            self.trace.emit(
                self.sim.now, "fault.probe_dark",
                probe=getattr(probe, "name", ""),
            )
            probe.enabled = False
            yield self.sim.timeout(float(rng.exponential(dropout.dropout_mean)))
            self.counters["probe_recoveries"] += 1
            self.trace.emit(
                self.sim.now, "fault.probe_restored",
                probe=getattr(probe, "name", ""),
            )
            probe.enabled = True

    # -- reporting ----------------------------------------------------------
    def is_down(self, name: str) -> bool:
        return name in self.down

    def stats(self) -> Dict[str, Any]:
        """All fault counters, ready for ``RunResult.fault_stats``."""
        stats: Dict[str, Any] = dict(self.counters)
        stats["components_down"] = len(self.down)
        dead = sum(int(getattr(bus, "dead_letters", 0)) for bus in self._buses)
        stats["dead_letters"] = dead
        by_sub: Dict[str, int] = {}
        for bus in self._buses:
            for sid, count in getattr(bus, "dead_letters_by_sid", {}).items():
                by_sub[f"{bus.name}:{sid}"] = count
        if by_sub:
            stats["dead_letters_by_subscriber"] = by_sub
        return stats

"""Per-shard event buses behind one publish/subscribe facade.

The sharded runtime gives every shard its own :class:`EventBus` so
shard-local monitoring traffic never serializes through a global bus.
:class:`ShardedEventBus` is the facade the existing probes, gauges, and
updaters talk to unchanged: it routes each publish to exactly **one**
child bus chosen from the message subject, and routes each subscribe to
the child bus(es) its pattern can match.

Routing uses the repo-wide subject convention ``kind.metric.target``
(probes publish ``probe.latency.T3``, gauges ``gauge.latency.T3``): the
*last* dot-segment names the model element, and the sharded model's
``shard_of`` says which shard owns it.  Subjects whose target the model
does not know deterministically land on shard 0 — and the same rule is
applied to fully-literal subscription patterns, so an unknown-target
publish still meets its unknown-target subscriber on shard 0 exactly
once.  Only patterns containing a wildcard token (``*`` or ``>``) fan
out to every child bus; a wildcard subscriber therefore sees each
message once, because the publish side never broadcasts.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.bus.bus import DeliveryModel, EventBus, Subscription
from repro.bus.filters import AttributeFilter
from repro.bus.messages import Message
from repro.bus.queues import QueuePolicy
from repro.sim.kernel import Simulator

__all__ = ["ShardedEventBus", "ShardedSubscription"]


class ShardedSubscription:
    """Handle over one logical subscription's per-shard registrations."""

    def __init__(self, pattern: str, parts: List[Subscription]):
        self.pattern = pattern
        self.parts = parts

    @property
    def active(self) -> bool:
        return any(sub.active for sub in self.parts)


def _has_wildcard(pattern: str) -> bool:
    return any(token in ("*", ">") for token in pattern.split("."))


class ShardedEventBus:
    """Facade over one :class:`EventBus` per shard.

    ``shard_of`` maps a model element name to its owning shard (``None``
    for names the model does not know).  The facade exposes the same
    publish/subscribe/stats surface as a single bus; per-child access is
    available through :meth:`shard` for shard-scoped wiring (e.g. the
    per-shard property updaters).
    """

    def __init__(
        self,
        sim: Simulator,
        shards: int,
        shard_of: Callable[[str], Optional[int]],
        delivery: Optional[DeliveryModel] = None,
        name: str = "bus",
        batched: bool = False,
        queue_policy: Optional[QueuePolicy] = None,
    ):
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        self.sim = sim
        self.name = name
        self._shard_of = shard_of
        self._buses = [
            EventBus(
                sim,
                delivery,
                name=f"{name}[{k}]",
                batched=batched,
                queue_policy=queue_policy,
            )
            for k in range(shards)
        ]

    # -- routing -----------------------------------------------------------
    def _route(self, subject: str) -> int:
        target = subject.rsplit(".", 1)[-1]
        shard = self._shard_of(target)
        if shard is None:
            return 0
        return shard % len(self._buses)

    def shard(self, index: int) -> EventBus:
        return self._buses[index]

    @property
    def shard_count(self) -> int:
        return len(self._buses)

    # -- subscription management -------------------------------------------
    def subscribe(
        self,
        pattern: str,
        handler: Callable[[Message], None],
        attr_filter: Optional[AttributeFilter] = None,
        batched: Optional[bool] = None,
        queue_policy: Optional[QueuePolicy] = None,
    ) -> ShardedSubscription:
        """Register on the child bus(es) ``pattern`` can match.

        Wildcard patterns register everywhere; literal patterns register
        only on their target's home shard (unknown target -> shard 0,
        mirroring publish routing).
        """
        if _has_wildcard(pattern):
            buses = self._buses
        else:
            buses = [self._buses[self._route(pattern)]]
        parts = [
            bus.subscribe(
                pattern,
                handler,
                attr_filter=attr_filter,
                batched=batched,
                queue_policy=queue_policy,
            )
            for bus in buses
        ]
        return ShardedSubscription(pattern, parts)

    def unsubscribe(self, sub) -> None:
        """Unsubscribe a facade handle or a raw child subscription."""
        parts = sub.parts if isinstance(sub, ShardedSubscription) else [sub]
        # unsubscribe is idempotent, so asking every child is safe even
        # though each part lives on exactly one of them
        for part in parts:
            for bus in self._buses:
                bus.unsubscribe(part)

    @property
    def subscriptions(self) -> List[Subscription]:
        return [sub for bus in self._buses for sub in bus.subscriptions]

    # -- publication -------------------------------------------------------
    def publish(self, message: Message) -> int:
        return self._buses[self._route(message.subject)].publish(message)

    def publish_subject(self, subject: str, sender: str = "", **attributes) -> int:
        return self._buses[self._route(subject)].publish_subject(
            subject, sender=sender, **attributes
        )

    # -- fault plane -------------------------------------------------------
    @property
    def fault_injector(self):
        return self._buses[0].fault_injector

    @fault_injector.setter
    def fault_injector(self, fn) -> None:
        for bus in self._buses:
            bus.fault_injector = fn

    @property
    def dead_letters(self) -> int:
        return sum(bus.dead_letters for bus in self._buses)

    # -- reporting ---------------------------------------------------------
    @property
    def published(self) -> int:
        return sum(bus.published for bus in self._buses)

    @property
    def delivered(self) -> int:
        return sum(bus.delivered for bus in self._buses)

    @property
    def mean_transit(self) -> float:
        delivered = self.delivered
        if not delivered:
            return 0.0
        total = sum(bus.total_transit for bus in self._buses)
        return total / delivered

    def stats(self) -> Dict[str, float]:
        """Rollup of the children's counters, same shape as a single bus."""
        data: Dict[str, float] = {
            "published": self.published,
            "delivered": self.delivered,
            "mean_transit": self.mean_transit,
        }
        children = [bus.stats() for bus in self._buses]
        if any("dead_letters" in child for child in children):
            data["dead_letters"] = sum(
                child.get("dead_letters", 0) for child in children
            )
        if any("batches" in child for child in children):
            for key in (
                "batched_subscriptions",
                "batches",
                "dropped",
                "stalled",
                "queued_now",
            ):
                data[key] = sum(child.get(key, 0) for child in children)
            for key in ("peak_depth", "max_batch"):
                data[key] = max(child.get(key, 0) for child in children)
        return data

    def shard_stats(self) -> List[Dict[str, float]]:
        """Per-child counters, index-aligned with shard numbers."""
        return [bus.stats() for bus in self._buses]

    def queue_stats(self) -> Dict[str, Dict[str, Any]]:
        out: Dict[str, Dict[str, Any]] = {}
        for bus in self._buses:
            out.update(bus.queue_stats())
        return out

"""Per-subscriber delivery queues for the batched bus path.

The unbatched bus schedules one simulator event per (subscription,
message) pair, so a publish fanning out to N subscribers costs N heap
operations before a single handler runs.  The batched path replaces
that with a :class:`SubscriberQueue` per subscription: ``publish``
appends one *shared* message reference per matching subscriber (zero
copies — :class:`~repro.bus.messages.Message` is frozen), and each
subscriber drains its queue in a single scheduled drain event per busy
period, delivering every pending message in one handler burst.

A :class:`QueuePolicy` bounds the queue and decides what overflow does:

========== ============================================================
mode        behaviour when the queue holds ``capacity`` messages
========== ============================================================
unbounded   never full (``capacity`` ignored)
drop-oldest evict the oldest queued message, then enqueue the new one
drop-newest discard the incoming message
block       park the message publisher-side (never lost); parked
            messages are admitted FIFO as the drain frees capacity —
            the backpressure shape of a blocking hand-off, expressed
            in added transit time instead of a blocked process
========== ============================================================

Every queue counts enqueues, deliveries, drops, stalls (block-mode
parks), bursts, and peak depth; the bus aggregates them in
:meth:`~repro.bus.bus.EventBus.stats` and exposes the per-subscriber
view through :meth:`~repro.bus.bus.EventBus.queue_stats`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Deque, Dict

if TYPE_CHECKING:  # pragma: no cover
    from repro.bus.bus import Subscription
    from repro.bus.messages import Message

__all__ = ["QUEUE_MODES", "QueuePolicy", "SubscriberQueue"]

#: the recognized ``QueuePolicy.mode`` values
QUEUE_MODES = ("unbounded", "drop-oldest", "drop-newest", "block")


@dataclass(frozen=True)
class QueuePolicy:
    """How one subscriber's delivery queue bounds itself.

    ``capacity`` is the maximum queued (undelivered) message count for
    the bounded modes; it must be positive for them and is ignored (by
    convention 0) for ``unbounded``.
    """

    mode: str = "unbounded"
    capacity: int = 0

    def __post_init__(self) -> None:
        if self.mode not in QUEUE_MODES:
            raise ValueError(
                f"unknown queue mode {self.mode!r}; expected one of "
                f"{', '.join(QUEUE_MODES)}"
            )
        if self.mode != "unbounded" and self.capacity < 1:
            raise ValueError(
                f"queue mode {self.mode!r} needs a positive capacity, "
                f"got {self.capacity}"
            )

    @property
    def bounded(self) -> bool:
        return self.mode != "unbounded"


class SubscriberQueue:
    """One subscription's pending deliveries plus its counters.

    ``queue`` holds admitted messages awaiting the next drain burst;
    ``parked`` holds block-mode overflow waiting for capacity.  A drain
    event is outstanding iff ``drain_scheduled`` — the bus maintains the
    invariant that the queue is non-empty whenever a drain is scheduled
    and no drain is scheduled for an empty queue.
    """

    __slots__ = (
        "sub",
        "policy",
        "queue",
        "parked",
        "drain_scheduled",
        "enqueued",
        "delivered",
        "dropped",
        "stalled",
        "batches",
        "max_batch",
        "peak_depth",
    )

    def __init__(self, sub: "Subscription", policy: QueuePolicy):
        self.sub = sub
        self.policy = policy
        self.queue: Deque["Message"] = deque()
        self.parked: Deque["Message"] = deque()
        self.drain_scheduled = False
        self.enqueued = 0
        self.delivered = 0
        self.dropped = 0
        self.stalled = 0
        self.batches = 0
        self.max_batch = 0
        self.peak_depth = 0

    @property
    def depth(self) -> int:
        """Undelivered messages held for this subscriber (incl. parked)."""
        return len(self.queue) + len(self.parked)

    def note_depth(self) -> None:
        depth = self.depth
        if depth > self.peak_depth:
            self.peak_depth = depth

    def snapshot(self) -> Dict[str, Any]:
        """The per-subscriber stats row (``EventBus.queue_stats``)."""
        return {
            "pattern": self.sub.pattern,
            "mode": self.policy.mode,
            "capacity": self.policy.capacity,
            "depth": self.depth,
            "peak_depth": self.peak_depth,
            "enqueued": self.enqueued,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "stalled": self.stalled,
            "batches": self.batches,
            "max_batch": self.max_batch,
        }

"""Subject-segment trie index for the event bus publish path.

The naive publish path tests every subscription's pattern against the
message subject — O(subscriptions) per publish, which dominates once the
runtime multiplies bus traffic across scenarios.  This index stores each
pattern as a path through a trie keyed on subject segments, with separate
branches for exact segments, ``*`` (exactly one segment), and ``>`` (one
or more trailing segments).  Matching walks the trie once per subject, so
cost is proportional to subject depth times the number of wildcard
branches along the way, not to the total number of subscriptions.

Matches are returned in subscription order (the order ``subscribe`` was
called), which is exactly the iteration order of the linear scan — the
bus relies on this to keep delivery order and statistics bit-for-bit
identical between the two paths.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bus.filters import validate_pattern

__all__ = ["SubjectTrie"]


class _Node:
    """One trie node: exact-segment children plus wildcard branches."""

    __slots__ = ("children", "star", "terminal", "tail")

    def __init__(self) -> None:
        self.children: Dict[str, _Node] = {}
        self.star: Optional[_Node] = None       # "*" branch
        self.terminal: Dict[str, object] = {}   # sid -> sub; patterns ending here
        self.tail: Dict[str, object] = {}       # sid -> sub; ">" patterns

    def is_empty(self) -> bool:
        return not (self.children or self.star or self.terminal or self.tail)


class SubjectTrie:
    """Pattern index mapping subjects to the subscriptions they match."""

    def __init__(self) -> None:
        self._root = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- maintenance -------------------------------------------------------
    def add(self, sub) -> None:
        """Index ``sub``.

        Entries must have ``sid``, ``pattern``, and an orderable ``seq``
        (the subscription sequence number :meth:`match` sorts by).
        """
        segments = validate_pattern(sub.pattern).split(".")
        node = self._root
        for segment in segments:
            if segment == ">":
                node.tail[sub.sid] = sub
                self._size += 1
                return
            if segment == "*":
                if node.star is None:
                    node.star = _Node()
                node = node.star
            else:
                node = node.children.setdefault(segment, _Node())
        node.terminal[sub.sid] = sub
        self._size += 1

    def remove(self, sub) -> None:
        """Drop ``sub`` from the index (no-op if absent), pruning dead nodes."""
        segments = sub.pattern.split(".")
        self._remove(self._root, segments, 0, sub.sid)

    def _remove(self, node: _Node, segments: List[str], i: int, sid: str) -> bool:
        """Recursive removal; returns True when ``node`` became empty."""
        if i < len(segments) and segments[i] == ">":
            if node.tail.pop(sid, None) is not None:
                self._size -= 1
            return node.is_empty()
        if i == len(segments):
            if node.terminal.pop(sid, None) is not None:
                self._size -= 1
            return node.is_empty()
        segment = segments[i]
        if segment == "*":
            child = node.star
            if child is not None and self._remove(child, segments, i + 1, sid):
                node.star = None
        else:
            child = node.children.get(segment)
            if child is not None and self._remove(child, segments, i + 1, sid):
                del node.children[segment]
        return node.is_empty()

    # -- lookup ------------------------------------------------------------
    def match(self, subject: str) -> List[object]:
        """All indexed subscriptions whose pattern matches ``subject``.

        Returned in subscription order (ascending ``seq``).
        """
        out: List[object] = []
        self._collect(self._root, subject.split("."), 0, out)
        if len(out) > 1:
            out.sort(key=lambda s: s.seq)
        return out

    def _collect(
        self, node: _Node, segments: List[str], i: int, out: List[object]
    ) -> None:
        if node.tail and i < len(segments):
            out.extend(node.tail.values())
        if i == len(segments):
            out.extend(node.terminal.values())
            return
        child = node.children.get(segments[i])
        if child is not None:
            self._collect(child, segments, i + 1, out)
        if node.star is not None:
            self._collect(node.star, segments, i + 1, out)

"""Subject patterns and Siena-style attribute filters.

Subject patterns are dotted, with two wildcards:

* ``*`` matches exactly one segment (``probe.*.C3``);
* ``>`` matches one or more trailing segments (``probe.>``).

Attribute filters are conjunctions of ``(name, op, value)`` constraints,
mirroring Siena's covering model closely enough for this reproduction.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple

__all__ = ["subject_matches", "validate_pattern", "AttributeFilter"]


def validate_pattern(pattern: str) -> str:
    """Check that ``pattern`` is a well-formed subject pattern.

    A valid pattern is a non-empty dotted sequence of non-empty segments
    where ``>`` (if present) is the final segment.  Returns the pattern so
    callers can validate inline; raises :class:`ValueError` otherwise.
    """
    if not isinstance(pattern, str):
        raise ValueError(f"subject pattern must be a string, got {pattern!r}")
    if not pattern:
        raise ValueError("subject pattern must not be empty")
    parts = pattern.split(".")
    for i, segment in enumerate(parts):
        if not segment:
            raise ValueError(f"empty segment in subject pattern {pattern!r}")
        if segment == ">" and i != len(parts) - 1:
            raise ValueError(f"'>' must be the final segment: {pattern!r}")
    return pattern


def subject_matches(pattern: str, subject: str) -> bool:
    """Test ``subject`` against a wildcard ``pattern``."""
    p_parts = pattern.split(".")
    s_parts = subject.split(".")
    for i, p in enumerate(p_parts):
        if p == ">":
            if i != len(p_parts) - 1:
                raise ValueError(f"'>' must be the final segment: {pattern!r}")
            return len(s_parts) >= i + 1
        if i >= len(s_parts):
            return False
        if p == "*":
            continue
        if p != s_parts[i]:
            return False
    return len(s_parts) == len(p_parts)


_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "prefix": lambda a, b: isinstance(a, str) and a.startswith(b),
    "exists": lambda a, b: True,  # presence is checked before dispatch
}


class AttributeFilter:
    """Conjunction of attribute constraints.

    >>> f = AttributeFilter([("latency", ">", 2.0), ("client", "==", "C3")])
    >>> f.matches({"latency": 3.1, "client": "C3"})
    True

    A constraint on a missing attribute fails the filter (except ``exists``,
    which *requires* presence and is satisfied by it).
    """

    def __init__(self, constraints: Sequence[Tuple[str, str, Any]] = ()):
        self.constraints: List[Tuple[str, str, Any]] = []
        for name, op, value in constraints:
            if op not in _OPS:
                raise ValueError(
                    f"unknown filter operator {op!r}; valid: {sorted(_OPS)}"
                )
            self.constraints.append((name, op, value))

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        for name, op, value in self.constraints:
            if name not in attributes:
                return False
            if op == "exists":
                continue
            try:
                if not _OPS[op](attributes[name], value):
                    return False
            except TypeError:
                return False  # incomparable types never match
        return True

    def __and__(self, other: "AttributeFilter") -> "AttributeFilter":
        return AttributeFilter(self.constraints + other.constraints)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{n}{op}{v!r}" for n, op, v in self.constraints)
        return f"AttributeFilter({parts})"

"""Bus message type."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["Message"]


@dataclass(frozen=True)
class Message:
    """An immutable notification.

    ``subject`` is a dotted hierarchy (``"probe.latency.C3"``); observers
    subscribe with wildcard patterns.  ``attributes`` carries the payload
    (Siena models notifications as attribute sets; we keep a dict).
    ``time`` is the publication time; delivery may happen later.
    """

    subject: str
    attributes: Dict[str, Any] = field(default_factory=dict)
    time: float = 0.0
    sender: str = ""

    def __post_init__(self) -> None:
        if not self.subject:
            raise ValueError("message subject must be non-empty")
        if any(not part for part in self.subject.split(".")):
            raise ValueError(f"malformed subject {self.subject!r} (empty segment)")

    def get(self, key: str, default: Any = None) -> Any:
        return self.attributes.get(key, default)

    def __getitem__(self, key: str) -> Any:
        return self.attributes[key]

    def with_time(self, time: float) -> "Message":
        """Copy with a new publication timestamp."""
        return Message(self.subject, dict(self.attributes), time, self.sender)

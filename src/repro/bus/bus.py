"""The event bus proper.

Delivery semantics: ``publish`` never invokes handlers synchronously.
In the default (unbatched) configuration each matching subscription
receives the message after a delay chosen by the bus's
:class:`DeliveryModel` (default: a small fixed latency), one simulator
event per (subscription, message) pair.  Because the underlying
simulator breaks ties in scheduling order, delivery is deterministic.

The *batched* path (opt-in per bus or per subscription) replaces the
per-pair events with per-subscriber queues: ``publish`` appends one
shared message reference to each matching subscriber's
:class:`~repro.bus.queues.SubscriberQueue`, and a single drain event
per busy period delivers everything pending in one handler burst.  A
:class:`~repro.bus.queues.QueuePolicy` bounds each queue (drop-oldest /
drop-newest / block-publisher backpressure); overflow and depth are
counted per subscriber and aggregated in :meth:`EventBus.stats`.

The delivery model is the hook for the paper's in-band-monitoring
effect: the experiment harness installs a model whose delay grows when
the network path carrying monitoring traffic is congested, and the A2
ablation swaps in a fixed-latency (QoS-prioritized) model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.bus.filters import AttributeFilter, subject_matches, validate_pattern
from repro.bus.index import SubjectTrie
from repro.bus.messages import Message
from repro.bus.queues import QueuePolicy, SubscriberQueue
from repro.sim.kernel import Simulator
from repro.util.ids import IdGenerator

__all__ = [
    "DeliveryModel",
    "FixedDelay",
    "CallableDelay",
    "Subscription",
    "EventBus",
    "QueuePolicy",
]


class DeliveryModel:
    """Strategy returning the bus transit delay for a message."""

    def delay(self, message: Message) -> float:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass
class FixedDelay(DeliveryModel):
    """Constant transit delay (default 10 ms; a LAN-ish event bus)."""

    seconds: float = 0.010

    def delay(self, message: Message) -> float:
        return self.seconds


class CallableDelay(DeliveryModel):
    """Adapts a plain ``message -> seconds`` callable."""

    def __init__(self, fn: Callable[[Message], float]):
        self._fn = fn

    def delay(self, message: Message) -> float:
        return self._fn(message)


@dataclass
class Subscription:
    """A registered interest: subject pattern + optional attribute filter.

    ``seq`` is the bus-assigned subscription order; delivery order follows
    it regardless of how candidates were looked up.
    """

    sid: str
    pattern: str
    handler: Callable[[Message], None]
    attr_filter: Optional[AttributeFilter] = None
    active: bool = True
    seq: int = 0

    def wants(self, message: Message) -> bool:
        if not self.active:
            return False
        if not subject_matches(self.pattern, message.subject):
            return False
        if self.attr_filter is not None and not self.attr_filter.matches(
            message.attributes
        ):
            return False
        return True


class EventBus:
    """Wide-area event bus simulacrum.

    Statistics (published/delivered counts, cumulative transit time,
    batching/overflow counters) feed the monitoring-overhead reporting
    in the experiment harness.

    ``batched=True`` makes queued batch delivery the default for every
    subscription; individual ``subscribe`` calls may override either
    way.  ``queue_policy`` is the default policy for batched
    subscriptions (unbounded when omitted).
    """

    def __init__(
        self,
        sim: Simulator,
        delivery: Optional[DeliveryModel] = None,
        name: str = "bus",
        indexed: bool = True,
        batched: bool = False,
        queue_policy: Optional[QueuePolicy] = None,
    ):
        self.sim = sim
        self.name = name
        self.delivery = delivery or FixedDelay()
        self.batched = batched
        self.queue_policy = queue_policy or QueuePolicy()
        self._subs: Dict[str, Subscription] = {}
        self._queues: Dict[str, SubscriberQueue] = {}
        self._index: Optional[SubjectTrie] = SubjectTrie() if indexed else None
        self._ids = IdGenerator()
        self._seq = 0
        self.published = 0
        self.delivered = 0
        self.total_transit = 0.0
        # batched-path aggregates (0 on a fully unbatched bus)
        self.dropped = 0
        self.stalled = 0
        self.batches = 0
        #: fault-plane hook: ``(sub, msg) -> bool``; True drops the
        #: delivery before scheduling/enqueueing and counts a dead letter
        self.fault_injector: Optional[Callable[[Subscription, Message], bool]] = None
        self.dead_letters = 0
        self.dead_letters_by_sid: Dict[str, int] = {}

    # -- subscription management -------------------------------------------
    def subscribe(
        self,
        pattern: str,
        handler: Callable[[Message], None],
        attr_filter: Optional[AttributeFilter] = None,
        batched: Optional[bool] = None,
        queue_policy: Optional[QueuePolicy] = None,
    ) -> Subscription:
        """Register ``handler`` for messages matching ``pattern`` (+filter).

        ``batched``/``queue_policy`` override the bus defaults for this
        subscription; passing a ``queue_policy`` alone implies batching.
        """
        validate_pattern(pattern)
        self._seq += 1
        sub = Subscription(
            self._ids.next("sub"), pattern, handler, attr_filter, seq=self._seq
        )
        self._subs[sub.sid] = sub
        if batched is None:
            batched = self.batched or queue_policy is not None
        if batched:
            self._queues[sub.sid] = SubscriberQueue(
                sub, queue_policy or self.queue_policy
            )
        if self._index is not None:
            self._index.add(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Deactivate and forget a subscription (idempotent).

        Batched subscriptions discard whatever is still queued or parked
        (never delivered, never counted as transit) — the queued
        analogue of the unbatched unsubscribe-while-in-flight rule.
        """
        sub.active = False
        if self._subs.pop(sub.sid, None) is not None and self._index is not None:
            self._index.remove(sub)
        sq = self._queues.pop(sub.sid, None)
        if sq is not None:
            sq.queue.clear()
            sq.parked.clear()

    @property
    def subscriptions(self) -> List[Subscription]:
        return list(self._subs.values())

    # -- publication ----------------------------------------------------------
    def publish(self, message: Message) -> int:
        """Route ``message`` to matching subscribers; returns match count.

        The message timestamp is normalized to the current simulation time.
        """
        msg = message.with_time(self.sim.now)
        self.published += 1
        matched = 0
        queues = self._queues
        inject = self.fault_injector
        for sub in self._matches(msg):
            matched += 1
            if inject is not None and inject(sub, msg):
                self.dead_letters += 1
                self.dead_letters_by_sid[sub.sid] = (
                    self.dead_letters_by_sid.get(sub.sid, 0) + 1
                )
                continue
            if queues:
                sq = queues.get(sub.sid)
                if sq is not None:
                    self._enqueue(sq, msg)
                    continue
            delay = float(self.delivery.delay(msg))
            if delay < 0:
                delay = 0.0
            self.sim.schedule(delay, self._deliver, sub, msg, delay)
        return matched

    def publish_subject(self, subject: str, sender: str = "", **attributes) -> int:
        """Convenience: build and publish a message in one call."""
        return self.publish(Message(subject, attributes, self.sim.now, sender))

    def _matches(self, msg: Message) -> List[Subscription]:
        """Subscriptions that want ``msg``, in subscription order.

        With the trie index, candidates already match the subject, so only
        the activity and attribute-filter checks remain; the linear path
        re-tests everything.  Both return the same subscriptions in the
        same order (handlers never run synchronously, so the candidate set
        is a snapshot either way).
        """
        if self._index is not None:
            return [
                sub
                for sub in self._index.match(msg.subject)
                if sub.active
                and (sub.attr_filter is None or sub.attr_filter.matches(msg.attributes))
            ]
        return [sub for sub in list(self._subs.values()) if sub.wants(msg)]

    # -- unbatched delivery ----------------------------------------------------
    def _deliver(self, sub: Subscription, msg: Message, delay: float = 0.0) -> None:
        if not sub.active:
            return  # unsubscribed while in flight
        self.delivered += 1
        # Transit accrues at delivery, not publish: the running mean is
        # never skewed by scheduled-but-undelivered messages, and
        # unsubscribe-cancelled deliveries contribute nothing.
        self.total_transit += delay
        sub.handler(msg)

    # -- batched delivery ------------------------------------------------------
    def _enqueue(self, sq: SubscriberQueue, msg: Message) -> None:
        policy = sq.policy
        queue = sq.queue
        sq.enqueued += 1
        if policy.bounded and len(queue) >= policy.capacity:
            mode = policy.mode
            if mode == "drop-oldest":
                queue.popleft()
                queue.append(msg)
                sq.dropped += 1
                self.dropped += 1
            elif mode == "drop-newest":
                sq.dropped += 1
                self.dropped += 1
            else:  # block: park publisher-side until the drain frees room
                sq.parked.append(msg)
                sq.stalled += 1
                self.stalled += 1
        else:
            queue.append(msg)
        sq.note_depth()
        if queue and not sq.drain_scheduled:
            self._schedule_drain(sq, queue[0])

    def _schedule_drain(self, sq: SubscriberQueue, head: Message) -> None:
        sq.drain_scheduled = True
        delay = float(self.delivery.delay(head))
        if delay < 0:
            delay = 0.0
        self.sim.schedule(delay, self._drain, sq)

    def _drain(self, sq: SubscriberQueue) -> None:
        """Deliver one busy period's batch in a single handler burst."""
        sq.drain_scheduled = False
        batch = sq.queue
        sq.queue = deque()
        # The burst frees capacity: admit parked (block-mode) overflow
        # FIFO into the fresh queue and start its own drain period.
        # Messages the handlers publish during the burst land behind it.
        capacity = sq.policy.capacity
        parked = sq.parked
        while parked and (not capacity or len(sq.queue) < capacity):
            sq.queue.append(parked.popleft())
        if sq.queue:
            self._schedule_drain(sq, sq.queue[0])
        if not batch:
            return
        sq.batches += 1
        self.batches += 1
        if len(batch) > sq.max_batch:
            sq.max_batch = len(batch)
        sub = sq.sub
        now = self.sim.now
        handler = sub.handler
        for msg in batch:
            if not sub.active:
                break  # unsubscribed mid-burst: discard the remainder
            self.delivered += 1
            sq.delivered += 1
            self.total_transit += now - msg.time
            handler(msg)

    # -- reporting -------------------------------------------------------------
    @property
    def mean_transit(self) -> float:
        return self.total_transit / self.delivered if self.delivered else 0.0

    def stats(self) -> Dict[str, float]:
        """Aggregate counters; batching fields appear once queues exist."""
        data: Dict[str, float] = {
            "published": self.published,
            "delivered": self.delivered,
            "mean_transit": self.mean_transit,
        }
        if self.fault_injector is not None or self.dead_letters:
            data["dead_letters"] = self.dead_letters
        if self._queues or self.batches or self.dropped or self.stalled:
            queues = self._queues.values()
            data.update(
                {
                    "batched_subscriptions": len(self._queues),
                    "batches": self.batches,
                    "dropped": self.dropped,
                    "stalled": self.stalled,
                    "queued_now": sum(sq.depth for sq in queues),
                    "peak_depth": max((sq.peak_depth for sq in queues), default=0),
                    "max_batch": max((sq.max_batch for sq in queues), default=0),
                }
            )
        return data

    def queue_stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-subscriber depth gauges and counters, keyed by sid."""
        return {sid: sq.snapshot() for sid, sq in self._queues.items()}

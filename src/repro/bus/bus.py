"""The event bus proper.

Delivery semantics: ``publish`` never invokes handlers synchronously.
Each matching subscription receives the message after a delay chosen by the
bus's :class:`DeliveryModel` (default: a small fixed latency).  Because the
underlying simulator breaks ties in scheduling order, delivery is
deterministic.

The delivery model is the hook for the paper's in-band-monitoring effect:
the experiment harness installs a model whose delay grows when the network
path carrying monitoring traffic is congested, and the A2 ablation swaps in
a fixed-latency (QoS-prioritized) model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.bus.filters import AttributeFilter, subject_matches, validate_pattern
from repro.bus.index import SubjectTrie
from repro.bus.messages import Message
from repro.sim.kernel import Simulator
from repro.util.ids import IdGenerator

__all__ = ["DeliveryModel", "FixedDelay", "Subscription", "EventBus"]


class DeliveryModel:
    """Strategy returning the bus transit delay for a message."""

    def delay(self, message: Message) -> float:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass
class FixedDelay(DeliveryModel):
    """Constant transit delay (default 10 ms; a LAN-ish event bus)."""

    seconds: float = 0.010

    def delay(self, message: Message) -> float:
        return self.seconds


class CallableDelay(DeliveryModel):
    """Adapts a plain ``message -> seconds`` callable."""

    def __init__(self, fn: Callable[[Message], float]):
        self._fn = fn

    def delay(self, message: Message) -> float:
        return self._fn(message)


@dataclass
class Subscription:
    """A registered interest: subject pattern + optional attribute filter.

    ``seq`` is the bus-assigned subscription order; delivery order follows
    it regardless of how candidates were looked up.
    """

    sid: str
    pattern: str
    handler: Callable[[Message], None]
    attr_filter: Optional[AttributeFilter] = None
    active: bool = True
    seq: int = 0

    def wants(self, message: Message) -> bool:
        if not self.active:
            return False
        if not subject_matches(self.pattern, message.subject):
            return False
        if self.attr_filter is not None and not self.attr_filter.matches(message.attributes):
            return False
        return True


class EventBus:
    """Wide-area event bus simulacrum.

    Statistics (published/delivered counts, cumulative transit time) feed
    the monitoring-overhead reporting in the experiment harness.
    """

    def __init__(
        self,
        sim: Simulator,
        delivery: Optional[DeliveryModel] = None,
        name: str = "bus",
        indexed: bool = True,
    ):
        self.sim = sim
        self.name = name
        self.delivery = delivery or FixedDelay()
        self._subs: Dict[str, Subscription] = {}
        self._index: Optional[SubjectTrie] = SubjectTrie() if indexed else None
        self._ids = IdGenerator()
        self._seq = 0
        self.published = 0
        self.delivered = 0
        self.total_transit = 0.0

    # -- subscription management -------------------------------------------
    def subscribe(
        self,
        pattern: str,
        handler: Callable[[Message], None],
        attr_filter: Optional[AttributeFilter] = None,
    ) -> Subscription:
        """Register ``handler`` for messages matching ``pattern`` (+filter)."""
        validate_pattern(pattern)
        self._seq += 1
        sub = Subscription(
            self._ids.next("sub"), pattern, handler, attr_filter, seq=self._seq
        )
        self._subs[sub.sid] = sub
        if self._index is not None:
            self._index.add(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Deactivate and forget a subscription (idempotent)."""
        sub.active = False
        if self._subs.pop(sub.sid, None) is not None and self._index is not None:
            self._index.remove(sub)

    @property
    def subscriptions(self) -> List[Subscription]:
        return list(self._subs.values())

    # -- publication ----------------------------------------------------------
    def publish(self, message: Message) -> int:
        """Route ``message`` to matching subscribers; returns match count.

        The message timestamp is normalized to the current simulation time.
        """
        msg = message.with_time(self.sim.now)
        self.published += 1
        matched = 0
        for sub in self._matches(msg):
            matched += 1
            delay = float(self.delivery.delay(msg))
            if delay < 0:
                delay = 0.0
            self.total_transit += delay
            self.sim.schedule(delay, self._deliver, sub, msg)
        return matched

    def publish_subject(self, subject: str, sender: str = "", **attributes) -> int:
        """Convenience: build and publish a message in one call."""
        return self.publish(Message(subject, attributes, self.sim.now, sender))

    def _matches(self, msg: Message) -> List[Subscription]:
        """Subscriptions that want ``msg``, in subscription order.

        With the trie index, candidates already match the subject, so only
        the activity and attribute-filter checks remain; the linear path
        re-tests everything.  Both return the same subscriptions in the
        same order (handlers never run synchronously, so the candidate set
        is a snapshot either way).
        """
        if self._index is not None:
            return [
                sub
                for sub in self._index.match(msg.subject)
                if sub.active
                and (sub.attr_filter is None or sub.attr_filter.matches(msg.attributes))
            ]
        return [sub for sub in list(self._subs.values()) if sub.wants(msg)]

    def _deliver(self, sub: Subscription, msg: Message) -> None:
        if not sub.active:
            return  # unsubscribed while in flight
        self.delivered += 1
        sub.handler(msg)

    # -- reporting -------------------------------------------------------------
    @property
    def mean_transit(self) -> float:
        return self.total_transit / self.delivered if self.delivered else 0.0

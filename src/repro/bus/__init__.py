"""Content-based publish/subscribe event bus (substrate S2).

Stands in for the Siena wide-area event notification service the paper used
to carry probe and gauge traffic.  Supports hierarchical subjects with
wildcards, Siena-style attribute filters, and an optional delivery-latency
model so monitoring traffic can contend with application traffic (the
paper's §5.3 observation that monitoring shares the network).
"""

from repro.bus.messages import Message
from repro.bus.filters import AttributeFilter, subject_matches, validate_pattern
from repro.bus.index import SubjectTrie
from repro.bus.queues import QueuePolicy, SubscriberQueue
from repro.bus.bus import (
    EventBus,
    Subscription,
    DeliveryModel,
    FixedDelay,
    CallableDelay,
)
from repro.bus.sharding import ShardedEventBus, ShardedSubscription

__all__ = [
    "ShardedEventBus",
    "ShardedSubscription",
    "Message",
    "AttributeFilter",
    "subject_matches",
    "validate_pattern",
    "SubjectTrie",
    "QueuePolicy",
    "SubscriberQueue",
    "EventBus",
    "Subscription",
    "DeliveryModel",
    "FixedDelay",
    "CallableDelay",
]
